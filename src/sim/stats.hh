/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named Scalar / Vector / Distribution statistics
 * inside a StatSet registry and keep the returned typed Handle<T> for
 * hot-path updates — no string lookup ever happens after
 * construction. The registry can dump a sorted human-readable report
 * and supports programmatic lookup via find(), which distinguishes an
 * absent statistic (nullptr) from one whose value is zero.
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nosync
{
namespace stats
{

/** A single named accumulating value. */
class Scalar
{
  public:
    Scalar(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    double value() const { return _value; }

    Scalar &
    operator+=(double v)
    {
        _value += v;
        return *this;
    }

    Scalar &
    operator++()
    {
        _value += 1.0;
        return *this;
    }

    void set(double v) { _value = v; }
    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/** A named vector of accumulating values with per-entry subnames. */
class Vector
{
  public:
    Vector(std::string name, std::string desc,
           std::vector<std::string> subnames)
        : _name(std::move(name)), _desc(std::move(desc)),
          _subnames(std::move(subnames)), _values(_subnames.size(), 0.0)
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    std::size_t size() const { return _values.size(); }
    const std::string &subname(std::size_t i) const
    {
        return _subnames[i];
    }

    double value(std::size_t i) const { return _values[i]; }

    /** Index of @p subname, or -1 when no such entry exists. */
    int
    indexOf(const std::string &subname) const
    {
        for (std::size_t i = 0; i < _subnames.size(); ++i) {
            if (_subnames[i] == subname)
                return static_cast<int>(i);
        }
        return -1;
    }

    double
    total() const
    {
        double sum = 0.0;
        for (double v : _values)
            sum += v;
        return sum;
    }

    void add(std::size_t i, double v = 1.0) { _values[i] += v; }
    void reset() { _values.assign(_values.size(), 0.0); }

  private:
    std::string _name;
    std::string _desc;
    std::vector<std::string> _subnames;
    std::vector<double> _values;
};

/**
 * A named sample distribution: count / sum / min / max plus log2
 * buckets, from which percentiles are estimated.
 *
 * Bucket b holds samples in [2^(b-1), 2^b); bucket 0 holds samples
 * below 1. Percentile estimates interpolate linearly within the
 * containing bucket and are clamped to the observed [min, max], so
 * p100 == max exactly and single-sample distributions report that
 * sample for every percentile.
 */
class Distribution
{
  public:
    static constexpr std::size_t kBuckets = 64;

    Distribution(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t bucket(std::size_t b) const { return _buckets[b]; }

    void
    sample(double v)
    {
        if (!_count || v < _min)
            _min = v;
        if (!_count || v > _max)
            _max = v;
        ++_count;
        _sum += v;
        ++_buckets[bucketOf(v)];
    }

    /** Estimate the @p p'th quantile, p in [0, 1]. */
    double percentile(double p) const;

    void
    reset()
    {
        _count = 0;
        _sum = _min = _max = 0.0;
        _buckets.fill(0);
    }

  private:
    static std::size_t
    bucketOf(double v)
    {
        if (v < 1.0)
            return 0;
        auto n = static_cast<std::uint64_t>(v);
        return std::min<std::size_t>(kBuckets - 1, std::bit_width(n));
    }

    std::string _name;
    std::string _desc;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::array<std::uint64_t, kBuckets> _buckets{};
};

/**
 * Typed reference to a registered statistic.
 *
 * Handles are what components cache at construction and update on the
 * hot path; they are trivially copyable and never dangle before their
 * owning StatSet is destroyed (statistics are never deregistered).
 * A default-constructed handle is empty and must not be dereferenced.
 *
 * Scalar-style update operators pass through, so `++h` and `h += v`
 * work on Handle<Scalar> exactly as they do on Scalar&.
 */
template <typename T>
class Handle
{
  public:
    Handle() = default;
    explicit Handle(T &stat) : _stat(&stat) {}

    explicit operator bool() const { return _stat != nullptr; }
    T &operator*() const { return *_stat; }
    T *operator->() const { return _stat; }

    Handle &
    operator++()
        requires requires(T t) { ++t; }
    {
        ++*_stat;
        return *this;
    }

    Handle &
    operator+=(double v)
        requires requires(T t) { t += v; }
    {
        *_stat += v;
        return *this;
    }

  private:
    T *_stat = nullptr;
};

/**
 * Registry of statistics, typically one per simulated System.
 *
 * Statistics are owned by the set and handed out as typed handles so
 * that components can update them without lookup cost on the hot
 * path. Registration is create-or-retrieve: registering the same name
 * twice yields a handle to the same statistic (a Vector re-registered
 * with a different shape panics).
 */
class StatSet
{
  public:
    /** Register (or retrieve) a scalar statistic. */
    Handle<Scalar> registerScalar(const std::string &name,
                                  const std::string &desc);

    /** Register (or retrieve) a vector statistic. */
    Handle<Vector>
    registerVector(const std::string &name, const std::string &desc,
                   const std::vector<std::string> &subnames);

    /** Register (or retrieve) a distribution statistic. */
    Handle<Distribution> registerDistribution(const std::string &name,
                                              const std::string &desc);

    /** Create (or retrieve an identically named) scalar statistic. */
    Scalar &scalar(const std::string &name, const std::string &desc);

    /** Create (or retrieve) a vector statistic. */
    Vector &vector(const std::string &name, const std::string &desc,
                   const std::vector<std::string> &subnames);

    /**
     * Look up a scalar; nullptr when absent. Unlike the deprecated
     * get(), a caller can tell "never registered" (a typo'd name)
     * from "registered but zero".
     */
    const Scalar *find(const std::string &name) const;

    /** Look up a vector; nullptr when absent. */
    const Vector *findVector(const std::string &name) const;

    /** Look up a distribution; nullptr when absent. */
    const Distribution *findDistribution(const std::string &name) const;

    /**
     * Look up a scalar's value; returns 0 when absent.
     * @deprecated use find() — a return of 0.0 is ambiguous between
     * a zero-valued statistic and a typo'd name.
     */
    [[deprecated("use find(); 0.0 is ambiguous for absent stats")]]
    double get(const std::string &name) const;

    /**
     * Look up one entry of a vector by "name::subname" convention.
     * @deprecated use findVector() + Vector::indexOf().
     */
    [[deprecated("use findVector() + indexOf()")]]
    double getVec(const std::string &name,
                  const std::string &subname) const;

    /** Reset every statistic to zero. */
    void resetAll();

    /** Render the full sorted report. */
    std::string dump() const;

  private:
    std::map<std::string, std::unique_ptr<Scalar>> _scalars;
    std::map<std::string, std::unique_ptr<Vector>> _vectors;
    std::map<std::string, std::unique_ptr<Distribution>> _dists;
};

} // namespace stats
} // namespace nosync

#endif // SIM_STATS_HH
