/**
 * @file
 * Deterministic discrete-event scheduler.
 *
 * All timing simulation in gpu-nosync is driven by a single EventQueue.
 * Events scheduled for the same tick fire in the order they were
 * scheduled (FIFO), which together with the deterministic RNG makes
 * every simulation fully reproducible.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace nosync
{

/** Priority for events that share a tick; lower runs first. */
enum class EventPriority : int
{
    NetworkDelivery = 0,
    Default = 1,
    CuIssue = 2,
    Stats = 3,
};

/**
 * A single-owner discrete-event queue.
 *
 * Callbacks are std::function thunks; components capture `this` and
 * whatever request state they need. The queue never runs callbacks
 * re-entrantly: schedule() during a callback enqueues for later.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @pre when >= now()
     */
    void
    schedule(Tick when, std::function<void()> fn,
             EventPriority prio = EventPriority::Default)
    {
        panic_if(when < _now, "scheduling event in the past (", when,
                 " < ", _now, ")");
        _events.push(Event{when, static_cast<int>(prio), _nextSeq++,
                           std::move(fn)});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Cycles delay, std::function<void()> fn,
               EventPriority prio = EventPriority::Default)
    {
        schedule(_now + delay, std::move(fn), prio);
    }

    /** Whether any events remain. */
    bool empty() const { return _events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _events.size(); }

    /**
     * Run events until the queue drains or @p limit ticks elapse.
     * @return the tick of the last executed event.
     */
    Tick run(Tick limit = ~Tick{0});

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Event
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (prio != other.prio)
                return prio > other.prio;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        _events;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace nosync

#endif // SIM_EVENT_QUEUE_HH
