/**
 * @file
 * Deterministic discrete-event scheduler.
 *
 * All timing simulation in gpu-nosync is driven by a single EventQueue.
 * Events scheduled for the same tick fire in the order they were
 * scheduled (FIFO), which together with the deterministic RNG makes
 * every simulation fully reproducible.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "logging.hh"
#include "small_fn.hh"
#include "types.hh"

namespace nosync
{

/** Priority for events that share a tick; lower runs first. */
enum class EventPriority : int
{
    NetworkDelivery = 0,
    Default = 1,
    CuIssue = 2,
    Stats = 3,
};

/**
 * Callback type for scheduled events. Captures up to the inline
 * capacity live inside the event record itself — no heap allocation
 * on the schedule/execute hot path; larger captures spill to the
 * heap transparently.
 */
using EventFn = SmallFn<56>;

/**
 * A single-owner discrete-event queue.
 *
 * Callbacks are SmallFn thunks; components capture `this` and
 * whatever request state they need. The queue never runs callbacks
 * re-entrantly: schedule() during a callback enqueues for later.
 *
 * Storage is split for speed: the binary heap orders small POD
 * entries (tick, packed priority+sequence, slot index) while the
 * callback itself sits in a slab-recycled slot that never moves
 * during heap sifts. Together with SmallFn's inline capture buffer,
 * scheduling and executing an ordinary event touches no allocator
 * once the slab is warm.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @pre when >= now()
     */
    void
    schedule(Tick when, EventFn fn,
             EventPriority prio = EventPriority::Default)
    {
        panic_if(when < _now, "scheduling event in the past (", when,
                 " < ", _now, ")");
        std::uint32_t slot;
        if (_freeSlots.empty()) {
            slot = static_cast<std::uint32_t>(_fnSlots.size());
            _fnSlots.push_back(std::move(fn));
        } else {
            slot = _freeSlots.back();
            _freeSlots.pop_back();
            _fnSlots[slot] = std::move(fn);
        }
        // Same-tick order: priority first, then FIFO. Both fold into
        // one 64-bit key (priority in the top bits, a monotonic
        // sequence below), so the heap comparator is two compares.
        _events.push(HeapEntry{
            when,
            (static_cast<std::uint64_t>(prio) << kSeqBits) |
                _nextSeq++,
            slot});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Cycles delay, EventFn fn,
               EventPriority prio = EventPriority::Default)
    {
        schedule(_now + delay, std::move(fn), prio);
    }

    /** Whether any events remain. */
    bool empty() const { return _events.empty(); }

    /** Tick of the earliest pending event; ~Tick{0} when empty. */
    Tick
    nextEventTick() const
    {
        return _events.empty() ? ~Tick{0} : _events.top().when;
    }

    /** Number of pending events. */
    std::size_t pending() const { return _events.size(); }

    /**
     * Run events until the queue drains or @p limit ticks elapse.
     * @return the tick of the last executed event.
     */
    Tick run(Tick limit = ~Tick{0});

    /**
     * Run every event strictly before @p end (exclusive), leaving
     * now() untouched past the last executed event. The PDES window
     * loop uses this so events scheduled exactly at a window boundary
     * run in the next window, after cross-domain traffic for that
     * tick has been merged.
     */
    void runUntil(Tick end);

    /** Advance the clock to @p t if it is behind (never rewinds). */
    void
    advanceTo(Tick t)
    {
        if (t > _now)
            _now = t;
    }

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

  private:
    /** Bits of the order key reserved for the FIFO sequence. */
    static constexpr unsigned kSeqBits = 56;

    struct HeapEntry
    {
        Tick when;
        std::uint64_t key; ///< (priority << kSeqBits) | sequence
        std::uint32_t slot;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return key > other.key;
        }
    };

    /** Pop the top entry and move its callback out of the slab. */
    EventFn popTop();

    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>>
        _events;
    std::vector<EventFn> _fnSlots;
    std::vector<std::uint32_t> _freeSlots;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace nosync

#endif // SIM_EVENT_QUEUE_HH
