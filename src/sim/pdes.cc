#include "pdes.hh"

#include <algorithm>

#include "logging.hh"

namespace nosync
{

namespace
{

/** Domain whose shard this thread is executing; -1 = serial. */
thread_local int tls_current_domain = -1;

} // namespace

int
PdesEngine::currentDomain()
{
    return tls_current_domain;
}

PdesEngine::DomainScope::DomainScope(int domain)
    : _prev(tls_current_domain)
{
    tls_current_domain = domain;
}

PdesEngine::DomainScope::~DomainScope()
{
    tls_current_domain = _prev;
}

PdesEngine::PdesEngine(unsigned num_domains, unsigned threads,
                       Cycles lookahead, EventQueue &coordinator)
    : _coordinator(coordinator), _window(lookahead),
      _numThreads(std::max(1u, std::min(threads, num_domains)))
{
    panic_if(num_domains == 0, "PDES engine needs at least one domain");
    panic_if(lookahead == 0, "PDES lookahead must be positive");

    _shards.reserve(num_domains);
    for (unsigned d = 0; d < num_domains; ++d)
        _shards.push_back(std::make_unique<EventQueue>());
    _lanes = std::vector<DomainLane>(num_domains + 1);

    // Contiguous block partition of domains onto workers: domain d
    // belongs to worker d * N / K, so neighbouring mesh nodes share a
    // worker and the block boundaries are identical for every run at
    // the same (K, N).
    _workerLo.resize(_numThreads);
    _workerHi.resize(_numThreads);
    for (unsigned w = 0; w < _numThreads; ++w) {
        _workerLo[w] = static_cast<unsigned>(
            static_cast<std::uint64_t>(w) * num_domains / _numThreads);
        _workerHi[w] = static_cast<unsigned>(
            static_cast<std::uint64_t>(w + 1) * num_domains /
            _numThreads);
    }

    if (_numThreads > 1) {
        _workers.reserve(_numThreads - 1);
        for (unsigned w = 1; w < _numThreads; ++w)
            _workers.emplace_back([this, w] { workerLoop(w); });
    }
}

PdesEngine::~PdesEngine()
{
    if (!_workers.empty()) {
        _stop.store(true, std::memory_order_release);
        _epoch.fetch_add(1, std::memory_order_release);
        _epoch.notify_all();
        for (std::thread &t : _workers)
            t.join();
    }
}

void
PdesEngine::pushSend(MeshSend send)
{
    const int d = tls_current_domain;
    panic_if(d < 0 || static_cast<unsigned>(d) >= numDomains(),
             "pushSend outside a domain context");
    _lanes[static_cast<unsigned>(d)].sends.push_back(std::move(send));
}

void
PdesEngine::postNotification(NotifyFn fn)
{
    const int d = tls_current_domain;
    const unsigned lane =
        d >= 0 ? static_cast<unsigned>(d) : numDomains();
    const Tick tick =
        d >= 0 ? _shards[static_cast<unsigned>(d)]->now()
               : _coordinator.now();
    _lanes[lane].notes.push_back(
        DomainLane::Note{tick, std::move(fn)});
}

void
PdesEngine::runShard(unsigned d, Tick window_end)
{
    DomainScope scope(static_cast<int>(d));
    EventQueue &eq = *_shards[d];
    eq.runUntil(window_end);
    eq.advanceTo(window_end);
}

void
PdesEngine::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        _epoch.wait(seen, std::memory_order_acquire);
        seen = _epoch.load(std::memory_order_acquire);
        if (_stop.load(std::memory_order_acquire))
            return;
        const Tick end = _windowEnd;
        for (unsigned d = _workerLo[worker]; d < _workerHi[worker];
             ++d)
            runShard(d, end);
        _arrived.fetch_add(1, std::memory_order_acq_rel);
        _arrived.notify_one();
    }
}

void
PdesEngine::runParallelPhase(Tick window_end)
{
    if (_numThreads == 1) {
        for (unsigned d = 0; d < numDomains(); ++d)
            runShard(d, window_end);
        return;
    }
    // Release the window to the workers, run this thread's own block,
    // then park until the rest arrive. Workers see _windowEnd via the
    // release fetch_add / acquire wait pair.
    _windowEnd = window_end;
    _arrived.store(0, std::memory_order_relaxed);
    _epoch.fetch_add(1, std::memory_order_release);
    _epoch.notify_all();
    for (unsigned d = _workerLo[0]; d < _workerHi[0]; ++d)
        runShard(d, window_end);
    const unsigned others = _numThreads - 1;
    for (;;) {
        const unsigned got = _arrived.load(std::memory_order_acquire);
        if (got == others)
            break;
        _arrived.wait(got, std::memory_order_acquire);
    }
}

std::vector<PdesEngine::MeshSend> &
PdesEngine::collectSends()
{
    _sendBuf.clear();
    for (unsigned d = 0; d < numDomains(); ++d) {
        DomainLane &lane = _lanes[d];
        for (MeshSend &s : lane.sends)
            _sendBuf.push_back(std::move(s));
        lane.sends.clear();
    }
    // Domain-major concatenation already orders ties by (source node,
    // deposit sequence); the stable sort lifts earlier-tick sends
    // from later domains without disturbing that order.
    std::stable_sort(_sendBuf.begin(), _sendBuf.end(),
                     [](const MeshSend &a, const MeshSend &b) {
                         return a.sent < b.sent;
                     });
    return _sendBuf;
}

void
PdesEngine::drainNotifications(Tick window_end)
{
    // Notifications may themselves post notifications (a TB completion
    // chained into a kernel-drain callback), which land in the serial
    // lane; loop until no lane holds work.
    for (;;) {
        _noteBuf.clear();
        for (unsigned lane = 0; lane <= numDomains(); ++lane) {
            DomainLane &l = _lanes[lane];
            for (DomainLane::Note &n : l.notes)
                _noteBuf.push_back(std::move(n));
            l.notes.clear();
        }
        if (_noteBuf.empty())
            return;
        std::stable_sort(_noteBuf.begin(), _noteBuf.end(),
                         [](const DomainLane::Note &a,
                            const DomainLane::Note &b) {
                             return a.tick < b.tick;
                         });
        _coordinator.advanceTo(window_end);
        for (DomainLane::Note &n : _noteBuf)
            n.fn();
    }
}

Tick
PdesEngine::run(Tick max_cycles, const Hooks &hooks)
{
    Tick reached = _coordinator.now();
    for (;;) {
        const Tick next = minNextTick();
        if (next == ~Tick{0})
            return reached;
        if (next >= max_cycles)
            return std::max(reached, max_cycles);

        const Tick end = next + _window;
        runParallelPhase(end);

        if (hooks.preBarrier)
            hooks.preBarrier(end);

        _coordinator.runUntil(end);
        _coordinator.advanceTo(end);

        std::vector<MeshSend> &sends = collectSends();
        if (!sends.empty()) {
            panic_if(!hooks.drainSends,
                     "cross-domain sends with no drain hook");
            hooks.drainSends(sends, end);
            sends.clear();
        }

        drainNotifications(end);

        reached = end;
        if (hooks.atBarrier && hooks.atBarrier(end))
            return reached;
    }
}

std::uint64_t
PdesEngine::executed() const
{
    std::uint64_t total = 0;
    for (const auto &eq : _shards)
        total += eq->executed();
    return total;
}

Tick
PdesEngine::minNextTick() const
{
    Tick next = _coordinator.nextEventTick();
    for (const auto &eq : _shards)
        next = std::min(next, eq->nextEventTick());
    return next;
}

} // namespace nosync
