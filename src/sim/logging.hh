/**
 * @file
 * Error / warning / trace helpers in the spirit of gem5's base/logging.
 *
 * panic()  - internal simulator invariant violated (a simulator bug);
 *            aborts so a debugger or core dump can inspect the state.
 * fatal()  - the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * warn()   - something is questionable but the simulation continues.
 * inform() - plain status output.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nosync
{

namespace logging_detail
{

/** Build a message from stream-formattable pieces. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

#define panic(...)                                                        \
    ::nosync::logging_detail::panicImpl(                                  \
        __FILE__, __LINE__, ::nosync::logging_detail::format(__VA_ARGS__))

#define fatal(...)                                                        \
    ::nosync::logging_detail::fatalImpl(                                  \
        __FILE__, __LINE__, ::nosync::logging_detail::format(__VA_ARGS__))

#define warn(...)                                                         \
    ::nosync::logging_detail::warnImpl(                                   \
        ::nosync::logging_detail::format(__VA_ARGS__))

#define inform(...)                                                       \
    ::nosync::logging_detail::informImpl(                                 \
        ::nosync::logging_detail::format(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

} // namespace nosync

#endif // SIM_LOGGING_HH
