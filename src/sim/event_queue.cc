#include "event_queue.hh"

namespace nosync
{

Tick
EventQueue::run(Tick limit)
{
    while (!_events.empty() && _events.top().when <= limit) {
        // Copy out: the callback may schedule new events and thus
        // invalidate the top reference.
        Event ev = _events.top();
        _events.pop();
        _now = ev.when;
        ++_executed;
        ev.fn();
    }
    if (_now < limit && !_events.empty())
        _now = limit;
    return _now;
}

bool
EventQueue::step()
{
    if (_events.empty())
        return false;
    Event ev = _events.top();
    _events.pop();
    _now = ev.when;
    ++_executed;
    ev.fn();
    return true;
}

} // namespace nosync
