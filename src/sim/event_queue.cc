#include "event_queue.hh"

namespace nosync
{

EventFn
EventQueue::popTop()
{
    const HeapEntry &top = _events.top();
    _now = top.when;
    ++_executed;
    // Move the callback out before invoking: running it may schedule
    // new events, which can grow the slab and reuse this slot.
    EventFn fn = std::move(_fnSlots[top.slot]);
    _freeSlots.push_back(top.slot);
    _events.pop();
    return fn;
}

Tick
EventQueue::run(Tick limit)
{
    while (!_events.empty() && _events.top().when <= limit) {
        EventFn fn = popTop();
        fn();
    }
    if (_now < limit && !_events.empty())
        _now = limit;
    return _now;
}

void
EventQueue::runUntil(Tick end)
{
    while (!_events.empty() && _events.top().when < end) {
        EventFn fn = popTop();
        fn();
    }
}

bool
EventQueue::step()
{
    if (_events.empty())
        return false;
    EventFn fn = popTop();
    fn();
    return true;
}

} // namespace nosync
