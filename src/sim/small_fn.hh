/**
 * @file
 * Small-buffer-optimized callable for the simulator's hot paths.
 *
 * Every simulated event and every mesh delivery used to carry a
 * std::function<void()>, whose ~16-byte inline buffer (libstdc++)
 * forces a heap allocation for nearly every capture list in the
 * codebase, plus another on each copy out of the event heap. SmallFn
 * stores callables up to Capacity bytes in-place and only falls back
 * to the heap beyond that, so the discrete-event core runs
 * allocation-free for ordinary protocol callbacks.
 *
 * Semantics: type-erased void() callable, movable and copyable
 * (copying panics at runtime if the stored callable is not
 * copy-constructible — the mesh needs copies only for duplicated
 * idempotent messages, whose closures are all copyable).
 */

#ifndef SIM_SMALL_FN_HH
#define SIM_SMALL_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "logging.hh"

namespace nosync
{

template <std::size_t Capacity>
class SmallFn
{
  public:
    SmallFn() = default;
    SmallFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            new (_storage) Fn(std::forward<F>(f));
            _ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(_storage) =
                new Fn(std::forward<F>(f));
            _ops = &heapOps<Fn>;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn(const SmallFn &other)
    {
        if (other._ops) {
            panic_if(!other._ops->copy,
                     "copying a SmallFn holding a non-copyable "
                     "callable");
            other._ops->copy(other._storage, _storage);
            _ops = other._ops;
        }
    }

    SmallFn &
    operator=(const SmallFn &other)
    {
        if (this != &other) {
            SmallFn tmp(other);
            reset();
            moveFrom(tmp);
        }
        return *this;
    }

    ~SmallFn() { reset(); }

    void
    operator()()
    {
        panic_if(!_ops, "invoking an empty SmallFn");
        _ops->invoke(_storage);
    }

    explicit operator bool() const { return _ops != nullptr; }

    void
    reset()
    {
        if (_ops) {
            _ops->destroy(_storage);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst);
        /** Copy-construct dst from src; null if not copyable. */
        void (*copy)(const void *src, void *dst);
        void (*destroy)(void *);
        /** Relocation is a plain byte copy (no ops call needed). */
        bool trivialRelocate;
    };

    static constexpr std::size_t kAlign = alignof(std::max_align_t);

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity && alignof(Fn) <= kAlign &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    void
    moveFrom(SmallFn &other) noexcept
    {
        _ops = other._ops;
        if (!_ops)
            return;
        if (_ops->trivialRelocate)
            std::memcpy(_storage, other._storage, Capacity);
        else
            _ops->relocate(other._storage, _storage);
        other._ops = nullptr;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](void *src, void *dst) {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        []() -> void (*)(const void *, void *) {
            if constexpr (std::is_copy_constructible_v<Fn>) {
                return [](const void *src, void *dst) {
                    new (dst) Fn(*std::launder(
                        reinterpret_cast<const Fn *>(src)));
                };
            } else {
                return nullptr;
            }
        }(),
        [](void *s) {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
        std::is_trivially_copyable_v<Fn> &&
            std::is_trivially_destructible_v<Fn>,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) { (**reinterpret_cast<Fn **>(s))(); },
        [](void *src, void *dst) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        []() -> void (*)(const void *, void *) {
            if constexpr (std::is_copy_constructible_v<Fn>) {
                return [](const void *src, void *dst) {
                    *reinterpret_cast<Fn **>(dst) = new Fn(
                        **reinterpret_cast<Fn *const *>(src));
                };
            } else {
                return nullptr;
            }
        }(),
        [](void *s) { delete *reinterpret_cast<Fn **>(s); },
        true, // relocating a heap callable just moves its pointer
    };

    alignas(kAlign) unsigned char _storage[Capacity];
    const Ops *_ops = nullptr;
};

} // namespace nosync

#endif // SIM_SMALL_FN_HH
