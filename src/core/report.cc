#include "core/report.hh"

#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace nosync
{

double
metricOf(const RunResult &run, int metric)
{
    switch (metric) {
      case 0:
        return static_cast<double>(run.cycles);
      case 1:
        return run.energyTotal;
      case 2:
        return run.trafficTotal;
      default:
        panic("unknown metric ", metric);
    }
}

std::string
renderFigure(const std::vector<WorkloadResults> &results, int metric,
             std::size_t baseline, const std::string &title)
{
    std::ostringstream os;
    os << "== " << title << " ==\n";
    if (results.empty())
        return os.str();

    os << std::left << std::setw(12) << "benchmark";
    for (const auto &run : results.front().runs)
        os << std::right << std::setw(10) << run.config;
    os << "\n";

    for (const auto &wr : results) {
        os << std::left << std::setw(12) << wr.workload;
        double base = metricOf(wr.runs.at(baseline), metric);
        for (const auto &run : wr.runs) {
            double v = base > 0.0 ? metricOf(run, metric) / base : 0.0;
            os << std::right << std::setw(9) << std::fixed
               << std::setprecision(2) << (v * 100.0) << "%";
        }
        os << "\n";
    }

    os << std::left << std::setw(12) << "AVG";
    for (std::size_t c = 0; c < results.front().runs.size(); ++c) {
        double avg = averageNormalized(results, metric, c, baseline);
        os << std::right << std::setw(9) << std::fixed
           << std::setprecision(2) << (avg * 100.0) << "%";
    }
    os << "\n";
    return os.str();
}

double
averageNormalized(const std::vector<WorkloadResults> &results,
                  int metric, std::size_t config, std::size_t baseline)
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &wr : results) {
        double base = metricOf(wr.runs.at(baseline), metric);
        double v = metricOf(wr.runs.at(config), metric);
        sum += base > 0.0 ? v / base : 0.0;
    }
    return sum / static_cast<double>(results.size());
}

namespace
{

std::string
renderBreakdown(const std::vector<WorkloadResults> &results,
                std::size_t baseline,
                const std::vector<std::string> &part_names,
                int metric,
                const std::function<double(const RunResult &,
                                           std::size_t)> &part)
{
    std::ostringstream os;
    for (const auto &wr : results) {
        double base = metricOf(wr.runs.at(baseline), metric);
        os << wr.workload << ":\n";
        for (const auto &run : wr.runs) {
            os << "  " << std::left << std::setw(6) << run.config;
            for (std::size_t p = 0; p < part_names.size(); ++p) {
                double v =
                    base > 0.0 ? part(run, p) / base * 100.0 : 0.0;
                os << " " << part_names[p] << "=" << std::fixed
                   << std::setprecision(1) << v << "%";
            }
            os << "\n";
        }
    }
    return os.str();
}

} // namespace

std::string
renderEnergyBreakdown(const std::vector<WorkloadResults> &results,
                      std::size_t baseline)
{
    return renderBreakdown(
        results, baseline, energyComponentNames(), 1,
        [](const RunResult &run, std::size_t p) {
            return run.energy[p];
        });
}

std::string
renderTrafficBreakdown(const std::vector<WorkloadResults> &results,
                       std::size_t baseline)
{
    return renderBreakdown(
        results, baseline, trafficClassNames(), 2,
        [](const RunResult &run, std::size_t p) {
            return run.traffic[p];
        });
}

std::string
renderHangReport(const HangReport &report)
{
    std::ostringstream os;
    os << "== HANG REPORT ==\n";
    os << "code:      " << report.reasonCode << "\n";
    os << "reason:    " << report.reason << "\n";
    os << "tick:      " << report.tick << "\n";
    os << "reproduce: workload=" << report.workload
       << " config=" << report.config;
    if (report.faultsEnabled)
        os << " fault-seed=" << report.faultSeed;
    else
        os << " (fault injection off)";
    os << "\n";

    os << "-- thread blocks (" << report.tbWaits.size()
       << " incomplete) --\n";
    for (const auto &tb : report.tbWaits)
        os << "  " << tb << "\n";

    os << "-- in-flight mesh messages (" << report.meshMessages.size()
       << ") --\n";
    for (const auto &msg : report.meshMessages) {
        os << "  " << msg.src << " -> " << msg.dst << " "
           << trafficClassNames()[static_cast<std::size_t>(msg.cls)]
           << " " << msg.flits << " flits, sent tick " << msg.sent
           << ", arrives tick " << msg.arrives
           << (msg.duplicate ? " (injected duplicate)" : "") << "\n";
    }

    os << "-- non-quiescent controllers (" << report.controllers.size()
       << ") --\n";
    for (const auto &snap : report.controllers) {
        os << "  " << snap.summary() << "\n";
        for (const auto &line : snap.detail)
            os << "    " << line << "\n";
    }

    os << "-- invariant sweep at hang tick --\n";
    if (report.violations.empty()) {
        os << "  clean (hang is a liveness failure, not a protocol "
              "state corruption)\n";
    } else {
        for (const auto &v : report.violations)
            os << "  " << v << "\n";
    }
    return os.str();
}

} // namespace nosync
