/**
 * @file
 * Qualitative protocol feature traits (Tables 1, 2, and 5).
 *
 * These are derived from the protocol definitions, not measured: they
 * encode which mechanisms each configuration possesses, and the
 * `bench/tables` harness renders them in the paper's table shapes.
 */

#ifndef CORE_FEATURES_HH
#define CORE_FEATURES_HH

#include <string>
#include <vector>

#include "coherence/protocol.hh"

namespace nosync
{

/** Table 2 feature rows. */
struct FeatureSet
{
    /** Yes / no / conditional ("if local scope"). */
    enum class Support
    {
        No,
        Yes,
        IfLocalScope,
    };

    Support reuseWrittenData;
    Support reuseValidData;
    Support noBurstyTraffic;
    Support noInvalidationsAcks;
    Support decoupledGranularity;
    Support reuseSynchronization;
    Support dynamicSharing;
};

/** Feature set of one of the studied configurations (Table 2). */
inline FeatureSet
featuresOf(const ProtocolConfig &config)
{
    using S = FeatureSet::Support;
    bool hrf = config.consistency == ConsistencyModel::Hrf;
    if (config.protocol == CoherenceProtocol::Gpu) {
        if (!hrf) {
            return {S::No, S::No, S::No, S::Yes, S::No, S::No, S::No};
        }
        return {S::IfLocalScope, S::IfLocalScope, S::IfLocalScope,
                S::Yes, S::No, S::IfLocalScope, S::No};
    }
    // DeNovo: ownership gives written-data and sync reuse and
    // decoupled transfer granularity regardless of the model. The
    // read-only enhancement mitigates valid-data reuse under DRF.
    S valid_reuse = hrf ? S::IfLocalScope
                        : (config.readOnlyRegions ? S::IfLocalScope
                                                  : S::No);
    return {S::Yes, valid_reuse, S::Yes, S::Yes, S::Yes, S::Yes,
            S::Yes};
}

/** Table 1: protocol-classification row. */
struct ProtocolClass
{
    std::string category;   ///< Conv HW / SW / Hybrid
    std::string example;    ///< MESI / GPU / DeNovo
    std::string invalidationInitiator;
    std::string upToDateTracking;
    bool supportsScopes;
};

inline std::vector<ProtocolClass>
protocolClassification()
{
    return {
        {"Conv HW", "MESI", "writer", "ownership", true},
        {"SW", "GPU", "reader", "writethrough", true},
        {"Hybrid", "DeNovo", "reader", "ownership", true},
    };
}

/** Table 5: related-work comparison row. */
struct RelatedWorkRow
{
    std::string scheme;
    FeatureSet features;
};

inline std::vector<RelatedWorkRow>
relatedWorkComparison()
{
    using S = FeatureSet::Support;
    return {
        {"HSC", {S::Yes, S::Yes, S::Yes, S::No, S::No, S::No, S::Yes}},
        {"Stash/TC/FC",
         {S::Yes, S::No, S::Yes, S::Yes, S::No, S::No, S::No}},
        {"QuickRelease",
         {S::Yes, S::No, S::No, S::No, S::Yes, S::No, S::No}},
        {"RemoteScopes",
         {S::IfLocalScope, S::IfLocalScope, S::IfLocalScope, S::No,
          S::Yes, S::IfLocalScope, S::Yes}},
        {"DD (this work)",
         {S::Yes, S::No, S::Yes, S::Yes, S::Yes, S::Yes, S::Yes}},
    };
}

/** Table 2 row labels, in paper order. */
inline std::vector<std::string>
featureNames()
{
    return {"Reuse Written Data",   "Reuse Valid Data",
            "No Bursty Traffic",    "No Invalidations/ACKs",
            "Decoupled Granularity", "Reuse Synchronization",
            "Dynamic Sharing"};
}

} // namespace nosync

#endif // CORE_FEATURES_HH
