#include "core/system.hh"

#include <chrono>

#include "core/protocol_checker.hh"

namespace nosync
{

System::System(const SystemConfig &config) : _config(config)
{
    // Every inter-field consistency rule lives in one place; a config
    // that fails validation is refused before any component exists.
    std::string invalid = _config.validate();
    fatal_if(!invalid.empty(), "invalid SystemConfig: ", invalid);

    if (_config.observability.traceEnabled) {
        _trace = std::make_unique<trace::TraceSink>(
            _stats, _config.observability.traceCapacity
                        ? _config.observability.traceCapacity
                        : trace::TraceSink::kDefaultCapacity);
    }
    if (_config.checking.raceCheckEnabled) {
        _races = std::make_unique<analysis::RaceDetector>(
            _config.protocol, _config.topology.devices,
            _config.topology.cusPerDevice);
        if (_config.checking.raceRecordCap != 0)
            _races->setRecordCap(_config.checking.raceRecordCap);
    }
    const MachineTopology &topo = _config.topology;
    unsigned num_nodes = topo.numNodes();

    _energy = std::make_unique<EnergyModel>(_stats, _config.energy);
    _mesh = std::make_unique<Mesh>(_eq, _stats, topo, _trace.get());
    if (_config.execution.faults.enabled) {
        _faults =
            std::make_unique<FaultInjector>(_config.execution.faults);
        _mesh->setFaultInjector(_faults.get());
    }

    // Interleave the functional image by line number — the same
    // mapping the L2 banks use — so each bank's misses touch a
    // private map. Pure layout; contents are unchanged.
    _memory.setInterleave(num_nodes);

    if (_config.execution.simThreads >= 1) {
        // Lookahead: the earliest a cross-node message can arrive is
        // sendTick + hopLatency + flits with flits >= 1 (the
        // inter-device link is at least as slow — validate() enforces
        // link.latency >= hopLatency), and a delivery policy may only
        // move arrivals later — so a window of hopLatency + 1 cycles
        // never needs intra-window cross-domain delivery.
        _engine = std::make_unique<PdesEngine>(
            num_nodes, _config.execution.simThreads,
            topo.mesh.hopLatency + 1, _eq);
        _mesh->setEngine(_engine.get());
        if (_faults)
            _faults->enableLanes(num_nodes);
        if (_trace)
            _trace->enableDomainStaging(num_nodes);
        if (_races)
            _races->enableDomainStaging(num_nodes);
        _energy->enableDomainLanes(num_nodes);
    }

    bool denovo =
        _config.protocol.protocol == CoherenceProtocol::Denovo;

    // One L2 bank per mesh node of every device (NUCA, Figure 1); the
    // functional image and the bank homing are striped machine-wide,
    // so the devices share one global address space.
    for (unsigned node = 0; node < num_nodes; ++node) {
        std::string name = "l2b" + std::to_string(node);
        if (denovo) {
            _denovoBanks.push_back(std::make_unique<DenovoL2Bank>(
                name, eqFor(node), _stats, *_energy, *_mesh,
                static_cast<NodeId>(node), _memory, _config.geometry,
                _config.timings, _trace.get()));
            _l2Banks.push_back(_denovoBanks.back().get());
        } else {
            _gpuBanks.push_back(std::make_unique<GpuL2Bank>(
                name, eqFor(node), _stats, *_energy, *_mesh,
                static_cast<NodeId>(node), _memory, _config.geometry,
                _config.timings, _trace.get()));
            _l2Banks.push_back(_gpuBanks.back().get());
        }
    }

    // One L1 per GPU CU: device d's CUs sit at that device's local
    // nodes 0 .. cusPerDevice-1 (the device's last node is its
    // CPU/gateway core). Global CU index is device-major.
    for (unsigned cu = 0; cu < topo.totalCus(); ++cu) {
        NodeId node = topo.nodeOfCu(cu);
        std::string name = "l1." + std::to_string(cu);
        if (denovo) {
            std::vector<DenovoL2Bank *> banks;
            for (auto &bank : _denovoBanks)
                banks.push_back(bank.get());
            _denovoL1s.push_back(std::make_unique<DenovoL1Cache>(
                name, eqFor(static_cast<unsigned>(node)), _stats,
                *_energy, *_mesh, node, _config.protocol,
                std::move(banks), _regions, _config.geometry,
                _config.timings, _trace.get()));
            _l1s.push_back(_denovoL1s.back().get());
        } else {
            std::vector<GpuL2Bank *> banks;
            for (auto &bank : _gpuBanks)
                banks.push_back(bank.get());
            _gpuL1s.push_back(std::make_unique<GpuL1Cache>(
                name, eqFor(static_cast<unsigned>(node)), _stats,
                *_energy, *_mesh, node, _config.protocol,
                std::move(banks), _config.geometry, _config.timings,
                _trace.get()));
            _l1s.push_back(_gpuL1s.back().get());
        }
    }

    if (denovo) {
        // Wire forwards: registry -> L1 and L1 -> L1. Indexed by mesh
        // node (owner ids are node ids); non-CU nodes hold no L1 and
        // never own words, so their slots stay null.
        std::vector<DenovoL1Cache *> l1s(num_nodes, nullptr);
        for (auto &l1 : _denovoL1s)
            l1s[static_cast<std::size_t>(l1->node())] = l1.get();
        for (auto &bank : _denovoBanks)
            bank->setL1s(l1s);
        for (auto &l1 : _denovoL1s)
            l1->setPeers(l1s);
    }

    if (_races) {
        for (L1Controller *l1 : _l1s)
            l1->setRaceDetector(_races.get());
        for (L2Controller *bank : _l2Banks)
            bank->setRaceDetector(_races.get());
    }
}

System::~System() = default;

Addr
System::alloc(Addr bytes)
{
    Addr base = _allocNext;
    Addr lines = (bytes + kLineBytes - 1) / kLineBytes;
    _allocNext += lines * kLineBytes;
    return base;
}

void
System::writeInit(Addr addr, std::uint32_t value)
{
    _memory.writeWord(addr, value);
}

std::uint32_t
System::debugRead(Addr addr)
{
    // Coherent whole-hierarchy read: a DeNovo L1 owning the word has
    // the only up-to-date copy; otherwise the home L2 bank (or memory
    // behind it) does.
    for (L1Controller *l1 : _l1s) {
        auto *dl1 = as<DenovoL1Cache>(*l1);
        if (dl1 != nullptr && dl1->ownsWord(addr)) {
            std::uint32_t value = 0;
            dl1->peekWord(addr, value);
            return value;
        }
    }
    std::size_t bank = (lineAlign(addr) / kLineBytes) %
                       _mesh->numNodes();
    if (!_l2Banks.empty())
        return _l2Banks[bank]->peekWord(addr);
    return _memory.readWord(addr);
}

void
System::declareReadOnly(Addr base, Addr bytes)
{
    _regions.addReadOnly(base, bytes);
}

void
System::declareStreaming(Addr base, Addr bytes)
{
    _regions.declare(base, bytes, RegionPolicy::Streaming);
}

void
System::collectMetrics(RunResult &result)
{
    if (_engine) {
        // Fold the per-domain engine lanes into the stats Vectors (in
        // node order, so the folded totals are packing-independent)
        // before anything below reads them.
        _mesh->foldEngineStats();
        _energy->foldLanes();
    }

    // Network energy accrues from the final flit counts.
    _energy->flitCrossings(_mesh->totalFlitCrossings());

    for (std::size_t c = 0; c < kNumEnergyComponents; ++c) {
        result.energy[c] =
            _energy->component(static_cast<EnergyComponent>(c));
    }
    result.energyTotal = _energy->total();

    for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
        result.traffic[c] =
            _mesh->flitCrossings(static_cast<TrafficClass>(c));
    }
    result.trafficTotal = _mesh->totalFlitCrossings();

    if (_trace) {
        for (std::size_t c = 0; c < trace::kNumTxnClasses; ++c) {
            auto cls = static_cast<trace::TxnClass>(c);
            const stats::Distribution &d = _trace->latency(cls);
            if (d.count() == 0)
                continue;
            result.syncLatency.push_back(
                {trace::txnClassName(cls), d.count(),
                 d.percentile(0.50), d.percentile(0.95), d.max()});
        }
    }
}

RunResult
System::run(Workload &workload)
{
    fatal_if(_ran, "a System instance runs exactly one workload; "
             "build a fresh System for each run");
    _ran = true;

    auto host_start = std::chrono::steady_clock::now();
    auto stamp_host = [&](RunResult &r) {
        r.host.eventsExecuted =
            _eq.executed() +
            (_engine ? _engine->executed() : std::uint64_t{0});
        r.host.millis = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() -
                            host_start)
                            .count();
    };

    fatal_if(_engine && _tbScheduler,
             "--sim-threads is incompatible with exploration "
             "scheduling (model checking is inherently serial)");
    fatal_if(_engine &&
                 _mesh->deliveryPolicy() != nullptr &&
                 _mesh->deliveryPolicy() != _faults.get(),
             "--sim-threads supports only the config's own fault "
             "injector as delivery policy");

    workload.init(*this);
    // Conflicting region declarations (an address covered by two
    // different policies) would make the per-region protocol choice
    // ambiguous: fail loudly before simulating a cycle.
    for (const std::string &conflict : _regions.validate())
        fatal("region declaration conflict: ", conflict);
    if (_races)
        _races->setSuppressions(workload.raceSuppressions());

    std::vector<NodeId> cu_nodes;
    cu_nodes.reserve(_l1s.size());
    for (unsigned cu = 0; cu < _l1s.size(); ++cu)
        cu_nodes.push_back(_config.topology.nodeOfCu(cu));
    GpuDevice device(_eq, _stats, *_energy, _l1s, workload,
                     _config.execution.seed,
                     _config.execution.kernelLaunchLatency,
                     _trace.get(), _races.get(), _tbScheduler,
                     _engine.get(), std::move(cu_nodes));

    bool done = false;
    Tick done_tick = 0;
    device.run([&] {
        done = true;
        done_tick = _eq.now();
    });

    // Periodic invariant sweeps run from this driver loop, never from
    // scheduled events: a recurring event would keep the queue
    // non-empty and defeat deadlock detection.
    ProtocolChecker checker(*this);
    Tick next_sweep =
        _config.checking.checkPeriod ? _config.checking.checkPeriod : 0;
    std::vector<std::string> sweep_violations;

    if (_engine) {
        // Engine mode: the window loop replaces the step loop. The
        // run quiesces naturally — windows keep closing until every
        // shard and the coordinator drain (bounded by maxCycles), so
        // in-flight protocol traffic lands before inspection, exactly
        // like the serial quiesce below. Invariant sweeps move to
        // window barriers, where all shards sit at the window end.
        PdesEngine::Hooks hooks;
        hooks.preBarrier = [this](Tick) {
            if (_races)
                _races->drainStaged();
            if (_trace)
                _trace->drainStaged();
        };
        hooks.drainSends =
            [this](std::vector<PdesEngine::MeshSend> &sends,
                   Tick end) { _mesh->drainEngineSends(sends, end); };
        hooks.atBarrier = [&](Tick end) {
            if (!done && next_sweep && end >= next_sweep) {
                sweep_violations = checker.sweepRacy();
                if (!sweep_violations.empty())
                    return true; // fail loudly, with state intact
                next_sweep = end + _config.checking.checkPeriod;
            }
            return false;
        };
        _engine->run(_config.execution.maxCycles, hooks);
    } else {
        while (!done && !_eq.empty() &&
               _eq.now() < _config.execution.maxCycles) {
            _eq.step();
            if (next_sweep && _eq.now() >= next_sweep) {
                sweep_violations = checker.sweepRacy();
                if (!sweep_violations.empty())
                    break; // fail loudly, with state intact
                next_sweep = _eq.now() + _config.checking.checkPeriod;
            }
        }

        if (done) {
            // Quiesce: in-flight protocol traffic (e.g. eviction
            // writebacks racing the final drain) must land before the
            // hierarchy is inspected for results.
            _eq.run(_config.execution.maxCycles);
        }
    }

    RunResult result;
    result.workload = workload.name();
    result.config = _config.protocol.shortName();
    result.cycles = done ? done_tick : _eq.now();

    if (!sweep_violations.empty()) {
        result.checkFailures.push_back(
            "protocol invariant violated at tick " +
            std::to_string(_eq.now()));
        for (auto &v : sweep_violations)
            result.checkFailures.push_back(std::move(v));
        collectMetrics(result);
        stamp_host(result);
        return result;
    }

    if (!done) {
        HangReport report;
        report.tick = _eq.now();
        if (_eq.empty()) {
            report.reasonCode = HangReport::kDeadlock;
            report.reason = "deadlock: event queue empty before "
                            "workload completion";
        } else {
            // The --max-cycles budget expired: not a bare truncation
            // but a structured, machine-matchable verdict, so a
            // wedged schedule during exploration is diagnosable.
            report.reasonCode = HangReport::kBudgetExhausted;
            report.reason = "watchdog: cycle budget (" +
                            std::to_string(_config.execution.maxCycles) +
                            ") exhausted";
        }
        report.workload = result.workload;
        report.config = result.config;
        report.faultsEnabled = _config.execution.faults.enabled;
        report.faultSeed = _config.execution.faults.seed;
        report.tbWaits = device.waitStates();
        report.meshMessages = _mesh->inFlightSnapshot();
        auto keep_busy = [&](ControllerSnapshot snap) {
            if (!snap.quiescent())
                report.controllers.push_back(std::move(snap));
        };
        for (L1Controller *l1 : _l1s)
            keep_busy(l1->snapshot());
        for (L2Controller *bank : _l2Banks)
            keep_busy(bank->snapshot());
        report.violations = checker.sweepRacy();

        result.checkFailures.push_back(report.reason);
        for (const auto &v : report.violations)
            result.checkFailures.push_back(v);
        result.hang = std::move(report);

        // The hung run's partial metrics still matter (a watchdog
        // fires on livelock, where traffic and energy explain what
        // spun); account the flits crossed so far.
        collectMetrics(result);
        stamp_host(result);
        return result;
    }

    result.cycles = done_tick;
    _stats.scalar("sim.exec_cycles", "workload execution time")
        .set(static_cast<double>(result.cycles));

    collectMetrics(result);

    result.checkFailures = workload.check(*this);
    if (_config.checking.checkAtQuiesce) {
        for (auto &v : checker.sweepQuiesced())
            result.checkFailures.push_back(std::move(v));
    }
    if (_races) {
        result.races =
            _races->finalize(result.workload, result.config);
        for (const analysis::RaceRecord &race : result.races.races) {
            if (!race.suppressed)
                result.checkFailures.push_back(
                    analysis::describeRace(race));
        }
        std::uint64_t described =
            result.races.races.size() - result.races.racesSuppressed;
        if (result.races.failureCount() > described) {
            result.checkFailures.push_back(
                std::to_string(result.races.failureCount() -
                               described) +
                " further race(s) past the record cap");
        }
    }
    stamp_host(result);
    return result;
}

} // namespace nosync
