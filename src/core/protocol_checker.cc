#include "core/protocol_checker.hh"

#include <map>
#include <sstream>

#include "core/system.hh"

namespace nosync
{

namespace
{

std::string
hexWord(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

std::vector<std::string>
ProtocolChecker::sweepRacy() const
{
    return sweep(false);
}

std::vector<std::string>
ProtocolChecker::sweepQuiesced() const
{
    return sweep(true);
}

std::vector<std::string>
ProtocolChecker::sweep(bool quiesced) const
{
    std::vector<std::string> out;
    unsigned num_cus = _sys.config().numCus();
    unsigned num_nodes = _sys.mesh().numNodes();

    auto collect = [&](const std::vector<std::string> &v) {
        out.insert(out.end(), v.begin(), v.end());
    };

    // Per-controller internal consistency (plus leak detection when
    // quiesced). The sweep is protocol-agnostic: it walks the uniform
    // l1()/l2Bank() interfaces and only downcasts (as<T>) for the
    // ownership cross-checks that exist solely under DeNovo.
    for (unsigned cu = 0; cu < num_cus; ++cu)
        collect(_sys.l1(cu).checkInvariants(quiesced));
    for (unsigned bank = 0; bank < num_nodes; ++bank)
        collect(_sys.l2Bank(bank).checkInvariants(quiesced));

    if (as<DenovoL1Cache>(_sys.l1(0)) == nullptr)
        return out; // GPU protocol: no ownership state to cross-check.

    // At most one L1 holds any word Registered, at every tick: on an
    // ownership transfer the old owner downgrades before the transfer
    // message is even sent.
    std::map<Addr, std::vector<unsigned>> owners;
    for (unsigned cu = 0; cu < num_cus; ++cu) {
        as<DenovoL1Cache>(_sys.l1(cu))->forEachRegisteredWord(
            [&](Addr addr) { owners[addr].push_back(cu); });
    }
    for (const auto &[addr, cus] : owners) {
        if (cus.size() > 1) {
            std::ostringstream os;
            os << "word " << hexWord(addr) << " registered in "
               << cus.size() << " L1s simultaneously (cus:";
            for (unsigned cu : cus)
                os << " " << cu;
            os << ")";
            out.push_back(os.str());
        }
        // Registration means the word was written. A read-only-region
        // word is exempt from acquire-time self-invalidation in every
        // L1 (DD+RO), so writing one would leave permanently stale
        // copies behind: the region contract forbids it.
        if (_sys.regions().isReadOnly(addr)) {
            out.push_back("word " + hexWord(addr) +
                          " registered (written) despite lying in the "
                          "declared read-only region");
        }
        // Streaming regions (DD+PR) bypass registration entirely: a
        // registered word there means an owned store or sync access
        // targeted a region the program declared streaming.
        if (_sys.config().protocol.perRegionPolicy &&
            _sys.regions().isStreaming(addr)) {
            out.push_back("word " + hexWord(addr) +
                          " registered despite lying in a declared "
                          "streaming region (DD+PR)");
        }
    }

    if (!quiesced)
        return out;

    // The remaining invariants only hold with no traffic in flight:
    // mid-run, the registry records a new owner before that L1's
    // registration completes, and stale Valid copies persist until the
    // (lazy) self-invalidation on the reader's next acquire.

    // L1 ownership and the L2 registry agree exactly. The registry
    // names owners by mesh node id, so cross-checking against a CU's
    // L1 goes through the topology's cu<->node map.
    const MachineTopology &topo = _sys.config().topology;
    for (const auto &[addr, cus] : owners) {
        unsigned bank = static_cast<unsigned>(
            (lineAlign(addr) / kLineBytes) % num_nodes);
        NodeId reg_owner =
            as<DenovoL2Bank>(_sys.l2Bank(bank))->ownerOf(addr);
        if (reg_owner != topo.nodeOfCu(cus.front())) {
            std::ostringstream os;
            os << "word " << hexWord(addr) << " registered in L1 of cu "
               << cus.front() << " (node " << topo.nodeOfCu(cus.front())
               << ") but the registry names node " << reg_owner;
            out.push_back(os.str());
        }
    }
    for (unsigned bank = 0; bank < num_nodes; ++bank) {
        as<DenovoL2Bank>(_sys.l2Bank(bank))
            ->forEachRegisteredWord([&](Addr addr, NodeId owner) {
                int cu = owner >= 0 ? topo.cuOfNode(owner) : -1;
                if (cu >= 0 && static_cast<unsigned>(cu) < num_cus &&
                    as<DenovoL1Cache>(
                        _sys.l1(static_cast<unsigned>(cu)))
                        ->ownsWord(addr)) {
                    return;
                }
                std::ostringstream os;
                os << "registry entry: word " << hexWord(addr)
                   << " owned by node " << owner
                   << " but that L1 does not hold it registered";
                out.push_back(os.str());
            });
    }

    // Note there is deliberately no "no other L1 holds the word
    // Valid" check: DeNovo never invalidates remote copies. A reader's
    // stale Valid copy legitimately persists until that reader's next
    // acquire sweeps it (lazily, via the epoch mechanism), and DRF
    // guarantees no read happens before such an acquire. Only copies
    // exempt from the sweep (registered elsewhere, or read-only
    // region) can go permanently stale, and both are checked above.

    return out;
}

std::vector<std::string>
ProtocolChecker::compareMemory(System &test, System &golden)
{
    std::vector<std::string> out;
    Addr top = std::min(test.allocTop(), golden.allocTop());
    std::size_t mismatches = 0;
    for (Addr addr = System::kAllocBase; addr < top;
         addr += kWordBytes) {
        std::uint32_t got = test.debugRead(addr);
        std::uint32_t want = golden.debugRead(addr);
        if (got == want)
            continue;
        if (++mismatches <= 10) {
            std::ostringstream os;
            os << "memory mismatch at " << hexWord(addr) << ": got "
               << got << ", golden run has " << want;
            out.push_back(os.str());
        }
    }
    if (mismatches > 10) {
        out.push_back("... and " + std::to_string(mismatches - 10) +
                      " more memory mismatches");
    }
    return out;
}

} // namespace nosync
