/**
 * @file
 * The System: one simulated CPU-GPU machine (Figure 1) under one of
 * the five studied configurations. This is the library's main entry
 * point: build a System from a SystemConfig, run a Workload, get a
 * RunResult with the paper's three metrics (execution time, dynamic
 * energy by component, network traffic by class).
 */

#ifndef CORE_SYSTEM_HH
#define CORE_SYSTEM_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/race_detector.hh"
#include "coherence/denovo_l1.hh"
#include "coherence/denovo_l2.hh"
#include "coherence/gpu_l1.hh"
#include "coherence/gpu_l2.hh"
#include "coherence/l2_controller.hh"
#include "coherence/region_map.hh"
#include "core/hang_report.hh"
#include "core/system_config.hh"
#include "energy/energy_model.hh"
#include "gpu/gpu_device.hh"
#include "gpu/workload.hh"
#include "mem/functional_mem.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"
#include "sim/stats.hh"
#include "trace/trace_sink.hh"

namespace nosync
{

/** Result of running one workload on one configuration. */
struct RunResult
{
    std::string workload;
    std::string config;

    /** Execution time in GPU cycles (Figures 2a/3a/4a). */
    Tick cycles = 0;

    /** Dynamic energy by component, pJ (Figures 2b/3b/4b). */
    std::array<double, kNumEnergyComponents> energy{};
    double energyTotal = 0.0;

    /** Network flit crossings by class (Figures 2c/3c/4c). */
    std::array<double, kNumTrafficClasses> traffic{};
    double trafficTotal = 0.0;

    /** Functional-check failures; empty on success. */
    std::vector<std::string> checkFailures;

    /** Populated when the run ended without workload completion. */
    std::optional<HangReport> hang;

    /**
     * Happens-before race report; enabled only when the run was
     * race-checked. Derived purely from simulated state, so it is
     * deterministic like the rest of the simulated fields.
     */
    analysis::RaceReport races;

    /**
     * Per-transaction-class latency summary, from the trace sink's
     * distributions. Empty unless the run was traced; derived purely
     * from simulated ticks, so it is deterministic like the rest of
     * the simulated fields.
     */
    struct LatencySummary
    {
        std::string cls;
        std::uint64_t count = 0;
        double p50 = 0.0;
        double p95 = 0.0;
        double max = 0.0;
    };
    std::vector<LatencySummary> syncLatency;

    /**
     * Host-side measurement, fenced off from the simulated result in
     * its own struct: determinism checks (e.g. the sweep-runner's
     * serial-vs-parallel identity test) compare the simulated fields
     * and skip this struct by construction.
     */
    struct Host
    {
        /** Wall-clock spent inside System::run, milliseconds. */
        double millis = 0.0;
        /** Simulated events executed by this run. */
        std::uint64_t eventsExecuted = 0;
    };
    Host host;

    bool ok() const { return checkFailures.empty(); }
};

/** One simulated machine instance. Build fresh per run. */
class System : public WorkloadEnv
{
  public:
    /** Base of the workload heap (below lies scratch/unused space). */
    static constexpr Addr kAllocBase = 0x10000;

    explicit System(const SystemConfig &config);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run @p workload to completion and collect the metrics. */
    RunResult run(Workload &workload);

    // WorkloadEnv interface -------------------------------------------
    Addr alloc(Addr bytes) override;
    void writeInit(Addr addr, std::uint32_t value) override;
    std::uint32_t debugRead(Addr addr) override;
    void declareReadOnly(Addr base, Addr bytes) override;
    void declareStreaming(Addr base, Addr bytes) override;
    unsigned numCus() const override { return _config.numCus(); }
    unsigned numDevices() const override
    {
        return _config.topology.devices;
    }
    unsigned cusPerDevice() const override
    {
        return _config.topology.cusPerDevice;
    }
    bool hrf() const override
    {
        return _config.protocol.consistency == ConsistencyModel::Hrf;
    }

    // Component access (tests, benches) -------------------------------
    const SystemConfig &config() const { return _config; }
    EventQueue &eventQueue() { return _eq; }

    /** PDES engine; nullptr unless config().simThreads >= 1. */
    PdesEngine *engine() { return _engine.get(); }
    stats::StatSet &stats() { return _stats; }
    Mesh &mesh() { return *_mesh; }
    FaultInjector *faults() { return _faults.get(); }
    EnergyModel &energy() { return *_energy; }
    FunctionalMem &memory() { return _memory; }
    RegionMap &regions() { return _regions; }

    /**
     * Uniform controller access, independent of the configured
     * protocol. Callers needing a concrete controller type downcast
     * explicitly with as<T>() (sim/sim_object.hh), which makes the
     * config dependence visible at the call site:
     *
     *     if (auto *l1 = as<DenovoL1Cache>(sys.l1(0))) ...
     *
     * Indices are machine-global (device-major): on a one-device
     * machine these are exactly the classic flat accessors, and
     * device(0) is a view of the whole machine. Multi-device callers
     * address per-device components through device(d).
     */
    L1Controller &l1(unsigned cu) { return *_l1s.at(cu); }
    L2Controller &l2Bank(unsigned bank) { return *_l2Banks.at(bank); }
    unsigned numL2Banks() const
    {
        return static_cast<unsigned>(_l2Banks.size());
    }

    /** Per-device addressing of one device's slice of the machine. */
    class DeviceView
    {
      public:
        DeviceView(System &sys, unsigned dev) : _sys(sys), _dev(dev) {}

        /** This device's L1 for device-local CU @p cu. */
        L1Controller &
        l1(unsigned cu) const
        {
            return _sys.l1(_dev * _sys.cusPerDevice() + cu);
        }

        /** This device's L2 bank for device-local node @p bank. */
        L2Controller &
        l2Bank(unsigned bank) const
        {
            return _sys.l2Bank(
                _dev * _sys._config.topology.nodesPerDevice() + bank);
        }

        unsigned numCus() const { return _sys.cusPerDevice(); }
        unsigned
        numL2Banks() const
        {
            return _sys._config.topology.nodesPerDevice();
        }

        /** Global node id of this device's CPU/gateway core. */
        NodeId
        gatewayNode() const
        {
            return _sys._config.topology.gatewayNode(_dev);
        }

        unsigned index() const { return _dev; }

      private:
        System &_sys;
        unsigned _dev;
    };

    /** View of device @p d's components. */
    DeviceView
    device(unsigned d)
    {
        fatal_if(d >= _config.topology.devices, "device(", d,
                 ") on a ", _config.topology.devices,
                 "-device machine");
        return DeviceView(*this, d);
    }

    /** Trace sink; nullptr unless config().traceEnabled. */
    trace::TraceSink *trace() { return _trace.get(); }

    /** Race detector; nullptr unless config().raceCheckEnabled. */
    analysis::RaceDetector *races() { return _races.get(); }

    // Exploration seams (bench/litmus_explore) ------------------------
    /**
     * Attach a thread-block scheduler before run(); the GpuDevice
     * threads it into every TbContext so the scheduler controls which
     * ready TB issues at each quantum. Null (the default) issues
     * inline — the normal, bitwise-identical path.
     */
    void setTbScheduler(TbScheduler *sched) { _tbScheduler = sched; }

    /**
     * Attach a message-delivery policy before run(). Overrides the
     * FaultInjector the config may have installed; at most one policy
     * drives a mesh.
     */
    void
    setDeliveryPolicy(DeliveryPolicy *policy)
    {
        _mesh->setDeliveryPolicy(policy);
    }

    /** End of the allocated workload heap (checker memory sweeps). */
    Addr allocTop() const { return _allocNext; }

  private:
    /** Fold the final flit/energy tallies into @p result. */
    void collectMetrics(RunResult &result);

    /** Event queue owning @p node's components (engine shard when
     *  the PDES engine is active, the single queue otherwise). */
    EventQueue &
    eqFor(unsigned node)
    {
        return _engine ? _engine->shard(node) : _eq;
    }

    SystemConfig _config;
    EventQueue _eq;
    /** Engine for --sim-threads runs; _eq becomes its coordinator. */
    std::unique_ptr<PdesEngine> _engine;
    stats::StatSet _stats;
    FunctionalMem _memory;
    RegionMap _regions;
    /** Declared before the components that hold pointers into it. */
    std::unique_ptr<trace::TraceSink> _trace;
    std::unique_ptr<analysis::RaceDetector> _races;
    std::unique_ptr<EnergyModel> _energy;
    std::unique_ptr<Mesh> _mesh;
    std::unique_ptr<FaultInjector> _faults;

    std::vector<std::unique_ptr<GpuL2Bank>> _gpuBanks;
    std::vector<std::unique_ptr<DenovoL2Bank>> _denovoBanks;
    std::vector<std::unique_ptr<GpuL1Cache>> _gpuL1s;
    std::vector<std::unique_ptr<DenovoL1Cache>> _denovoL1s;
    std::vector<L1Controller *> _l1s;
    std::vector<L2Controller *> _l2Banks;

    Addr _allocNext = kAllocBase;
    bool _ran = false;
    /** Exploration scheduler; nullptr outside model checking. */
    TbScheduler *_tbScheduler = nullptr;
};

} // namespace nosync

#endif // CORE_SYSTEM_HH
