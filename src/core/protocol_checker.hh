/**
 * @file
 * Protocol invariant checker.
 *
 * Sweeps the simulated cache hierarchy for states that no correct
 * execution can reach. Two severities of sweep exist because the
 * protocols have legitimate transient windows:
 *
 *  - sweepRacy() checks only invariants that hold at *every* tick:
 *    at most one DeNovo L1 holds a word Registered (the old owner
 *    invalidates before the transfer is sent), registry entries point
 *    at live L1 ids, registered (written) words never lie in the
 *    declared read-only region, and each controller's internal
 *    bookkeeping is self-consistent. Safe to run mid-simulation at
 *    any event boundary.
 *
 *  - sweepQuiesced() additionally checks invariants that only hold
 *    once all traffic has drained: L1 ownership and the L2 registry
 *    agree exactly, and every MSHR / store buffer / writeback buffer
 *    is empty (leak detection). Stale Valid copies of owned words are
 *    deliberately *not* flagged: DeNovo never invalidates remote
 *    copies, so they legally persist until the holder's next acquire
 *    sweeps them.
 *
 * The sweeps are driven from System::run's event loop — never from
 * scheduled events, which would keep the queue non-empty and defeat
 * deadlock detection.
 */

#ifndef CORE_PROTOCOL_CHECKER_HH
#define CORE_PROTOCOL_CHECKER_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace nosync
{

class System;

/** Invariant sweeps over one System's cache hierarchy. */
class ProtocolChecker
{
  public:
    explicit ProtocolChecker(System &sys) : _sys(sys) {}

    /** Invariants valid at any event boundary. Empty when clean. */
    std::vector<std::string> sweepRacy() const;

    /** Full sweep; only valid once all traffic drained. */
    std::vector<std::string> sweepQuiesced() const;

    /**
     * Compare the allocated global-memory image of @p test against
     * @p golden word by word (coherent reads on both hierarchies).
     * Used by the fault harness to cross-check a fault-injected run
     * against a fault-free golden execution of the same workload.
     */
    static std::vector<std::string> compareMemory(System &test,
                                                  System &golden);

  private:
    std::vector<std::string> sweep(bool quiesced) const;

    System &_sys;
};

} // namespace nosync

#endif // CORE_PROTOCOL_CHECKER_HH
