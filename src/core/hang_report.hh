/**
 * @file
 * Structured hang diagnostics.
 *
 * When a run ends without workload completion — the event queue
 * drained with thread blocks still suspended (deadlock) or the cycle
 * watchdog fired (livelock / pathological slowdown) — the System
 * assembles a HangReport instead of a bare failure string: every
 * outstanding piece of state that explains *why* nothing (or nothing
 * useful) is happening, plus everything needed to reproduce the run.
 */

#ifndef CORE_HANG_REPORT_HH
#define CORE_HANG_REPORT_HH

#include <string>
#include <vector>

#include "coherence/snapshot.hh"
#include "noc/mesh.hh"

namespace nosync
{

/** Everything known about a run that failed to complete. */
struct HangReport
{
    /**
     * Structured reason codes, stable for machine matching (the
     * exploration driver and harness scripts branch on these; the
     * human-readable `reason` string is free to change).
     */
    static constexpr const char *kDeadlock = "deadlock";
    static constexpr const char *kBudgetExhausted = "budget-exhausted";

    /** Tick at which the run was declared hung. */
    Tick tick = 0;

    /** kDeadlock (queue empty) or kBudgetExhausted (cycle budget). */
    std::string reasonCode;

    /** Human-readable elaboration of reasonCode. */
    std::string reason;

    std::string workload;
    std::string config;

    /** Whether fault injection was active, and under which seed. */
    bool faultsEnabled = false;
    std::uint64_t faultSeed = 0;

    /** Per-thread-block coroutine wait states (incomplete TBs only). */
    std::vector<std::string> tbWaits;

    /** Messages still traversing the mesh at the hang tick. */
    std::vector<InFlightMsg> meshMessages;

    /** Snapshots of every non-quiescent cache controller. */
    std::vector<ControllerSnapshot> controllers;

    /** Protocol invariant violations found at the hang tick. */
    std::vector<std::string> violations;
};

} // namespace nosync

#endif // CORE_HANG_REPORT_HH
