/**
 * @file
 * Reporting helpers shared by the benchmark harnesses: normalized
 * tables in the paper's figure shapes (execution time, energy by
 * component, network traffic by class, each normalized to a chosen
 * baseline configuration).
 */

#ifndef CORE_REPORT_HH
#define CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/system.hh"

namespace nosync
{

/** All configurations' results for one workload. */
struct WorkloadResults
{
    std::string workload;
    std::vector<RunResult> runs; ///< one per configuration
};

/** Render one figure part: normalized metric per config per workload.
 *
 * @param results   per-workload results (same config order each)
 * @param metric    0 = execution time, 1 = energy, 2 = traffic
 * @param baseline  index of the config to normalize to
 */
std::string renderFigure(const std::vector<WorkloadResults> &results,
                         int metric, std::size_t baseline,
                         const std::string &title);

/** Render the energy breakdown (per component) for each run. */
std::string
renderEnergyBreakdown(const std::vector<WorkloadResults> &results,
                      std::size_t baseline);

/** Render the traffic breakdown (per class) for each run. */
std::string
renderTrafficBreakdown(const std::vector<WorkloadResults> &results,
                       std::size_t baseline);

/** Geometric-mean style summary: average normalized metric. */
double averageNormalized(const std::vector<WorkloadResults> &results,
                         int metric, std::size_t config,
                         std::size_t baseline);

/** Extract a metric scalar from a run result. */
double metricOf(const RunResult &run, int metric);

/**
 * Render a HangReport as a multi-line diagnostic block: the reason,
 * the reproduction line (workload, config, fault seed), per-TB
 * coroutine wait states, in-flight mesh messages, and every
 * non-quiescent controller's snapshot.
 */
std::string renderHangReport(const HangReport &report);

} // namespace nosync

#endif // CORE_REPORT_HH
