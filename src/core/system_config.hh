/**
 * @file
 * Top-level system configuration (Table 3 plus the studied protocol
 * configuration).
 */

#ifndef CORE_SYSTEM_CONFIG_HH
#define CORE_SYSTEM_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "coherence/cache_timings.hh"
#include "coherence/protocol.hh"
#include "energy/energy_model.hh"
#include "noc/fault_injector.hh"
#include "noc/mesh.hh"

namespace nosync
{

/** Everything needed to build a System. */
struct SystemConfig
{
    /** Which of GD / GH / DD / DD+RO / DH to build. */
    ProtocolConfig protocol = ProtocolConfig::dd();

    MeshParams mesh{};
    CacheGeometry geometry{};
    CacheTimings timings{};
    EnergyParams energy{};

    /** GPU compute units; the remaining mesh node is the CPU core. */
    unsigned numCus = 15;

    /** Seed for workload randomness (UTS shape, backoff jitter). */
    std::uint64_t seed = 1;

    /** CPU-side kernel launch latency (cycles). */
    Cycles kernelLaunchLatency = 300;

    /** Watchdog: abort runs exceeding this many cycles. */
    Tick maxCycles = 2'000'000'000ull;

    /**
     * Parallel in-run simulation (--sim-threads=N): 0 (the default)
     * keeps today's single-queue serial path, byte-for-byte. N >= 1
     * switches the run onto the PDES engine — the mesh is partitioned
     * into one domain per node, each advancing its own event-queue
     * shard within conservative time windows of hopLatency + 1
     * cycles. Engine output is bitwise identical for every N
     * (including 1, which runs the same windowed schedule inline
     * without spawning threads): the merged event order depends only
     * on the fixed per-node partition, never on thread packing.
     */
    unsigned simThreads = 0;

    /** Message-delivery fault injection (chaos testing). */
    FaultConfig faults{};

    /**
     * Period (cycles) of in-run protocol invariant sweeps; 0 turns
     * the periodic sweeps off. Sweeps run from the simulation driver
     * loop, never from the event queue, so an otherwise-idle system
     * still deadlock-detects.
     */
    Tick checkPeriod = 0;

    /** Run the full invariant sweep after the workload quiesces. */
    bool checkAtQuiesce = true;

    /**
     * Transaction tracing: when set, the System constructs a
     * trace::TraceSink and wires it into every controller, the mesh
     * and the GPU device. Off by default; the off path never
     * constructs the sink (a null pointer at every seam), so traced
     * and untraced builds of the same run produce bitwise-identical
     * simulated results.
     */
    bool traceEnabled = false;

    /** Trace ring capacity in events; 0 uses the sink's default. */
    std::size_t traceCapacity = 0;

    /**
     * Happens-before race checking: when set, the System constructs
     * an analysis::RaceDetector and wires it into the TB contexts and
     * every coherence controller. Off by default; like tracing, the
     * off path never constructs the detector, so checked and
     * unchecked builds of the same run produce bitwise-identical
     * simulated results. Unsuppressed races land in checkFailures.
     */
    bool raceCheckEnabled = false;

    /**
     * Detailed race-record cap (--race-cap=N in the harnesses); 0
     * keeps the detector's default (RaceDetector::kMaxRecords).
     * Races past the cap are still counted, and the report's
     * `truncated` flag records that detail was dropped.
     */
    std::size_t raceRecordCap = 0;

    /** Convenience: same machine, different protocol configuration. */
    SystemConfig
    with(const ProtocolConfig &proto) const
    {
        SystemConfig copy = *this;
        copy.protocol = proto;
        return copy;
    }
};

} // namespace nosync

#endif // CORE_SYSTEM_CONFIG_HH
