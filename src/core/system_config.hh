/**
 * @file
 * Top-level system configuration (Table 3 plus the studied protocol
 * configuration), grouped into named sub-structs:
 *
 *   - `topology`       what machine to build (devices x mesh + link)
 *   - `execution`      how to run it (seed, watchdog, threads, faults)
 *   - `checking`       correctness machinery (invariant sweeps, races)
 *   - `observability`  tracing
 *
 * One `validate()` owns every inter-field consistency rule; System's
 * constructor calls it and refuses invalid configurations with the
 * returned message, so the rules live here instead of scattered
 * per-seam panics.
 */

#ifndef CORE_SYSTEM_CONFIG_HH
#define CORE_SYSTEM_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "coherence/cache_timings.hh"
#include "coherence/protocol.hh"
#include "energy/energy_model.hh"
#include "noc/fault_injector.hh"
#include "noc/mesh.hh"

namespace nosync
{

/** Everything needed to build a System. */
struct SystemConfig
{
    /** Which of GD / GH / DD / DD+RO / DH / DD+SE to build. */
    ProtocolConfig protocol = ProtocolConfig::dd();

    /**
     * Machine shape: number of devices, the mesh geometry each device
     * replicates (CUs + one CPU/gateway node), and the inter-device
     * link class. The default is the classic one-device machine.
     */
    MachineTopology topology{};

    CacheGeometry geometry{};
    CacheTimings timings{};
    EnergyParams energy{};

    /** How the run executes: seeding, pacing, threading, chaos. */
    struct Execution
    {
        /** Seed for workload randomness (UTS shape, backoff jitter). */
        std::uint64_t seed = 1;

        /** CPU-side kernel launch latency (cycles). */
        Cycles kernelLaunchLatency = 300;

        /** Watchdog: abort runs exceeding this many cycles. */
        Tick maxCycles = 2'000'000'000ull;

        /**
         * Parallel in-run simulation (--sim-threads=N): 0 (the
         * default) keeps the single-queue serial path, byte-for-byte.
         * N >= 1 switches the run onto the PDES engine — one domain
         * per mesh node, each advancing its own event-queue shard
         * within conservative windows of hopLatency + 1 cycles.
         * Engine output is bitwise identical for every N (including
         * 1): the merged event order depends only on the fixed
         * per-node partition, never on thread packing.
         */
        unsigned simThreads = 0;

        /** Message-delivery fault injection (chaos testing). */
        FaultConfig faults{};
    };
    Execution execution{};

    /** Correctness machinery riding along with the run. */
    struct Checking
    {
        /**
         * Period (cycles) of in-run protocol invariant sweeps; 0
         * turns the periodic sweeps off. Sweeps run from the
         * simulation driver loop, never from the event queue, so an
         * otherwise-idle system still deadlock-detects.
         */
        Tick checkPeriod = 0;

        /** Run the full invariant sweep after the workload quiesces. */
        bool checkAtQuiesce = true;

        /**
         * Happens-before race checking: when set, the System
         * constructs an analysis::RaceDetector and wires it into the
         * TB contexts and every coherence controller. Off by default;
         * the off path never constructs the detector, so checked and
         * unchecked builds of the same run produce bitwise-identical
         * simulated results. Unsuppressed races land in
         * checkFailures.
         */
        bool raceCheckEnabled = false;

        /**
         * Detailed race-record cap (--race-cap=N in the harnesses);
         * 0 keeps the detector's default
         * (RaceDetector::kMaxRecords). Races past the cap are still
         * counted, and the report's `truncated` flag records that
         * detail was dropped.
         */
        std::size_t raceRecordCap = 0;
    };
    Checking checking{};

    /** Observability sinks riding along with the run. */
    struct Observability
    {
        /**
         * Transaction tracing: when set, the System constructs a
         * trace::TraceSink and wires it into every controller, the
         * mesh and the GPU device. Off by default; the off path never
         * constructs the sink, so traced and untraced builds of the
         * same run produce bitwise-identical simulated results.
         */
        bool traceEnabled = false;

        /** Trace ring capacity in events; 0 uses the sink default. */
        std::size_t traceCapacity = 0;
    };
    Observability observability{};

    /** Total GPU compute units across all devices. */
    unsigned numCus() const { return topology.totalCus(); }

    /**
     * Check every inter-field consistency rule in one place.
     * @return an error message, or "" when the config is buildable.
     */
    std::string
    validate() const
    {
        unsigned per_dev = topology.nodesPerDevice();
        unsigned num_nodes = topology.numNodes();
        if (topology.devices < 1)
            return "topology needs at least one device";
        if (topology.devices > 64)
            return "topology supports at most 64 devices, got " +
                   std::to_string(topology.devices);
        if (topology.mesh.width < 1 || topology.mesh.height < 1)
            return "per-device mesh must be at least 1x1";
        if (topology.cusPerDevice < 1)
            return "each device needs at least one CU";
        if (topology.cusPerDevice >= per_dev)
            return "need at least one non-CU node per device for the "
                   "CPU/gateway core (" +
                   std::to_string(topology.cusPerDevice) +
                   " CUs on a " + std::to_string(per_dev) +
                   "-node mesh)";
        // CacheLine packs the per-word owner as int16_t, so NodeId
        // must fit in [-1, 32766]; reject larger machines before
        // building any per-node structures instead of silently
        // truncating owner ids in the registry.
        if (num_nodes > 32766)
            return "machine has " + std::to_string(num_nodes) +
                   " nodes but CacheLine owner ids are int16_t "
                   "(max 32766)";
        // Route entries store link indices as uint16_t.
        if (static_cast<std::size_t>(num_nodes) * 4 +
                static_cast<std::size_t>(topology.devices) *
                    topology.devices >
            65535)
            return "machine link table exceeds the 16-bit route "
                   "index space";
        if (topology.devices > 1) {
            if (topology.link.cyclesPerFlit < 1)
                return "inter-device link needs cyclesPerFlit >= 1";
            // The PDES window is hopLatency + 1 cycles; a faster
            // inter-device link would allow intra-window cross-domain
            // delivery and break the conservative lookahead.
            if (topology.link.latency < topology.mesh.hopLatency)
                return "inter-device link latency (" +
                       std::to_string(topology.link.latency) +
                       ") must be at least the mesh hop latency (" +
                       std::to_string(topology.mesh.hopLatency) +
                       ") to preserve the PDES lookahead window";
        }
        if (execution.simThreads > 1024)
            return "simThreads must be in [0, 1024], got " +
                   std::to_string(execution.simThreads);
        if (execution.maxCycles == 0)
            return "maxCycles watchdog cannot be zero";
        return "";
    }

    /** Convenience: same machine, different protocol configuration. */
    SystemConfig
    with(const ProtocolConfig &proto) const
    {
        SystemConfig copy = *this;
        copy.protocol = proto;
        return copy;
    }
};

} // namespace nosync

#endif // CORE_SYSTEM_CONFIG_HH
