/**
 * @file
 * Machine-readable sweep records (BENCH_*.json).
 *
 * Every bench harness can emit its full result matrix as JSON: one
 * cell per simulation with the paper's three metrics plus host-side
 * performance (wall-clock, simulated events, events/sec), and a
 * header with the sweep's own wall-clock and thread count. CI
 * archives these files per PR so the simulator's performance
 * trajectory is tracked alongside its accuracy.
 */

#ifndef RUNNER_BENCH_JSON_HH
#define RUNNER_BENCH_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hh"

namespace nosync
{

/** One simulation's worth of a sweep record. */
struct SweepCell
{
    unsigned scalePercent = 100;
    std::uint64_t faultSeed = 0;
    RunResult result;
};

/** A harness's full sweep, ready to serialize. */
struct SweepRecord
{
    std::string harness;
    unsigned jobs = 1;
    double wallMillis = 0.0;

    std::vector<SweepCell> cells;

    void
    add(const RunResult &result, unsigned scale_percent,
        std::uint64_t fault_seed = 0)
    {
        cells.push_back(SweepCell{scale_percent, fault_seed, result});
    }

    /** Write the record to @p path. @return false on I/O failure. */
    bool writeJson(const std::string &path) const;
};

} // namespace nosync

#endif // RUNNER_BENCH_JSON_HH
