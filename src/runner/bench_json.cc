#include "runner/bench_json.hh"

#include <fstream>

#include "energy/energy_model.hh"
#include "noc/traffic.hh"
#include "runner/json_writer.hh"

namespace nosync
{

bool
SweepRecord::writeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;

    double total_host_ms = 0.0;
    std::uint64_t total_events = 0;
    for (const auto &cell : cells) {
        total_host_ms += cell.result.host.millis;
        total_events += cell.result.host.eventsExecuted;
    }

    JsonWriter json(os);
    json.beginObject();
    json.key("harness").value(harness);
    json.key("jobs").value(jobs);
    json.key("wall_ms").value(wallMillis);
    json.key("total_events").value(total_events);
    json.key("sim_ms").value(total_host_ms);
    json.key("events_per_sec")
        .value(total_host_ms > 0.0
                   ? static_cast<double>(total_events) * 1000.0 /
                         total_host_ms
                   : 0.0);
    json.key("cells").beginArray();
    for (const auto &cell : cells) {
        const RunResult &r = cell.result;
        json.beginObject();
        json.key("workload").value(r.workload);
        json.key("config").value(r.config);
        json.key("scale_percent").value(cell.scalePercent);
        if (cell.faultSeed != 0)
            json.key("fault_seed").value(cell.faultSeed);
        json.key("cycles").value(r.cycles);
        json.key("energy_total").value(r.energyTotal);
        json.key("traffic_total").value(r.trafficTotal);
        json.key("energy").beginObject();
        for (std::size_t c = 0; c < kNumEnergyComponents; ++c)
            json.key(energyComponentNames()[c]).value(r.energy[c]);
        json.endObject();
        json.key("traffic").beginObject();
        for (std::size_t c = 0; c < kNumTrafficClasses; ++c)
            json.key(trafficClassNames()[c]).value(r.traffic[c]);
        json.endObject();
        if (!r.syncLatency.empty()) {
            json.key("latency").beginObject();
            for (const auto &lat : r.syncLatency) {
                json.key(lat.cls).beginObject();
                json.key("count").value(lat.count);
                json.key("p50").value(lat.p50);
                json.key("p95").value(lat.p95);
                json.key("max").value(lat.max);
                json.endObject();
            }
            json.endObject();
        }
        json.key("host_ms").value(r.host.millis);
        json.key("events").value(r.host.eventsExecuted);
        json.key("events_per_sec")
            .value(r.host.millis > 0.0
                       ? static_cast<double>(r.host.eventsExecuted) *
                             1000.0 / r.host.millis
                       : 0.0);
        json.key("ok").value(r.ok());
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace nosync
