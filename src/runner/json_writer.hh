/**
 * @file
 * Minimal JSON emitter for machine-readable benchmark output.
 *
 * Deliberately tiny (no external dependency, no DOM): a streaming
 * writer with begin/end pairs and automatic comma placement, enough
 * for the flat documents the bench harnesses emit. Doubles are
 * printed with max_digits10 so the recorded metrics round-trip
 * exactly.
 */

#ifndef RUNNER_JSON_WRITER_HH
#define RUNNER_JSON_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace nosync
{

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : _os(os) {}

    JsonWriter &
    beginObject()
    {
        comma();
        _os << "{";
        _first.push_back(true);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        _first.pop_back();
        _os << "}";
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        comma();
        _os << "[";
        _first.push_back(true);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        _first.pop_back();
        _os << "]";
        return *this;
    }

    /** Emit a key; follow with exactly one value/begin call. */
    JsonWriter &
    key(const std::string &name)
    {
        comma();
        quote(name);
        _os << ":";
        _pendingValue = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &s)
    {
        comma();
        quote(s);
        return *this;
    }

    JsonWriter &
    value(const char *s)
    {
        return value(std::string(s));
    }

    JsonWriter &
    value(double d)
    {
        comma();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        _os << buf;
        return *this;
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        comma();
        _os << v;
        return *this;
    }

    JsonWriter &
    value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }

    JsonWriter &
    value(bool b)
    {
        comma();
        _os << (b ? "true" : "false");
        return *this;
    }

  private:
    void
    comma()
    {
        if (_pendingValue) {
            // This token is the value for an already-emitted key.
            _pendingValue = false;
            return;
        }
        if (!_first.empty()) {
            if (!_first.back())
                _os << ",";
            _first.back() = false;
        }
    }

    void
    quote(const std::string &s)
    {
        _os << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                _os << "\\\"";
                break;
              case '\\':
                _os << "\\\\";
                break;
              case '\n':
                _os << "\\n";
                break;
              case '\t':
                _os << "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    _os << buf;
                } else {
                    _os << c;
                }
            }
        }
        _os << '"';
    }

    std::ostream &_os;
    std::vector<bool> _first;
    bool _pendingValue = false;
};

} // namespace nosync

#endif // RUNNER_JSON_WRITER_HH
