#include "runner/sweep_runner.hh"

#include <algorithm>
#include <iostream>
#include <mutex>
#include <thread>

namespace nosync
{

namespace
{

std::mutex log_mutex;

} // namespace

SweepRunner::SweepRunner(unsigned jobs) : _jobs(resolveJobs(jobs)) {}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
SweepRunner::log(const std::string &line)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::cerr << line << "\n";
}

void
SweepRunner::forEach(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    if (_jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n && !cancelled(); ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        while (!cancelled()) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };

    std::size_t num_threads =
        std::min<std::size_t>(_jobs, n);
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t)
        threads.emplace_back(worker);
    for (auto &thread : threads)
        thread.join();
}

} // namespace nosync
