/**
 * @file
 * Parallel sweep execution.
 *
 * Every quantitative result in this repo comes from a matrix of
 * independent (workload x config x seed) simulations. SweepRunner
 * fans those jobs out across host threads: each job builds its own
 * System (and thus its own EventQueue, RNG, and stats), so per-job
 * determinism is untouched, and results land in a pre-sized vector
 * at their job index, so aggregation order — and therefore every
 * table and figure — is bitwise identical to a serial run.
 *
 * Scheduling is self-stealing: workers claim the next unclaimed job
 * index from a shared atomic counter, which load-balances matrices
 * whose cells differ wildly in cost (a GD spin-herd cell can run 10x
 * longer than its DD neighbour).
 */

#ifndef RUNNER_SWEEP_RUNNER_HH
#define RUNNER_SWEEP_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace nosync
{

class SweepRunner
{
  public:
    /** @p jobs worker threads; 0 means one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 1);

    /** Number of worker threads a sweep will use. */
    unsigned jobs() const { return _jobs; }

    /**
     * Invoke @p fn(i) for every i in [0, n), using up to jobs()
     * threads. Returns when all claimed jobs have finished. With
     * jobs() == 1 the calls happen inline on the calling thread, in
     * index order — the serial reference behavior.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Map @p fn over [0, n) and collect the results in job-index
     * order. @p fn must be safe to call concurrently from multiple
     * threads; its result type must be default-constructible and
     * movable.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        std::vector<std::invoke_result_t<Fn &, std::size_t>> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Stop claiming new jobs (already-running jobs finish). Used by
     * jobs that detect a fatal check failure so a large matrix does
     * not grind on after the sweep is already doomed.
     */
    void cancel() { _cancelled.store(true, std::memory_order_relaxed); }
    bool
    cancelled() const
    {
        return _cancelled.load(std::memory_order_relaxed);
    }

    /**
     * Serialized progress line to stderr ("  running NN on DD...").
     * Jobs running on worker threads must use this instead of writing
     * std::cerr directly, or lines interleave mid-character.
     */
    static void log(const std::string &line);

    /** Resolve a --jobs=N request: 0 means one per hardware thread. */
    static unsigned resolveJobs(unsigned requested);

  private:
    unsigned _jobs;
    std::atomic<bool> _cancelled{false};
};

} // namespace nosync

#endif // RUNNER_SWEEP_RUNNER_HH
