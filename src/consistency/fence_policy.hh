/**
 * @file
 * Consistency-model policy helpers.
 *
 * The DRF and HRF models share one program-order requirement (Section
 * 2 of the paper); what differs is which scope a synchronization
 * access effectively has and therefore which fences are no-ops. This
 * header centralizes those decisions so thread contexts and tests can
 * reason about them uniformly; the controllers implement the
 * corresponding cache actions.
 */

#ifndef CONSISTENCY_FENCE_POLICY_HH
#define CONSISTENCY_FENCE_POLICY_HH

#include "coherence/protocol.hh"

namespace nosync
{

/** Fence behaviour implied by a sync access under a configuration. */
struct FenceActions
{
    /** Prior buffered writes must become visible before the access. */
    bool drainBefore = false;
    /** The cache self-invalidates when the access completes. */
    bool invalidateAfter = false;
    /** The access may execute at the L1 (vs. the shared L2). */
    bool mayExecuteLocally = false;
};

/**
 * Decide fence behaviour for @p op under @p config.
 *
 * Mirrors Section 3: GPU coherence performs global sync at the L2
 * with full flash invalidations and drains; local (HRF) sync skips all
 * three. DeNovo always executes sync at the L1 (after registration)
 * and selectively invalidates only unowned words.
 */
inline FenceActions
fenceActionsFor(const SyncOp &op, const ProtocolConfig &config)
{
    FenceActions actions;
    Scope scope = config.effectiveScope(op.scope);
    bool local = scope == Scope::Local;
    actions.drainBefore = op.isRelease() && !local;
    actions.invalidateAfter = op.isAcquire() && !local;
    actions.mayExecuteLocally =
        local || config.protocol == CoherenceProtocol::Denovo;
    return actions;
}

} // namespace nosync

#endif // CONSISTENCY_FENCE_POLICY_HH
