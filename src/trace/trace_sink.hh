/**
 * @file
 * Transaction trace sink: slab-buffered protocol event capture plus
 * per-transaction-class latency distributions.
 *
 * One TraceSink exists per traced System; components hold a nullable
 * pointer to it and the entire instrumentation cost when tracing is
 * disabled is a single null check at each seam (the sink is simply
 * never constructed). When enabled, record() appends a 32-byte POD
 * TraceEvent to a chunked ring buffer: slabs of 64 Ki events are
 * allocated lazily up to the capacity, after which the oldest slab's
 * slots are overwritten and the overwritten events counted as
 * dropped. Thread-block accesses additionally open/close transactions
 * (beginTxn/endTxn), whose issue-to-completion latencies feed typed
 * stats::Distribution handles — one per TxnClass — registered in the
 * owning StatSet as trace.latency.<class>.
 *
 * writeChromeJson() renders the buffer in the Chrome trace-event JSON
 * format (chrome://tracing, Perfetto): completed transactions become
 * "X" duration events and protocol events become "i" instants, with
 * pid 0 and tid = mesh node, timestamps in simulated cycles.
 */

#ifndef TRACE_TRACE_SINK_HH
#define TRACE_TRACE_SINK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/pdes.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/trace_event.hh"

namespace nosync
{
namespace trace
{

/** A completed (begin/end matched) thread-block transaction. */
struct CompletedTxn
{
    std::uint64_t id;
    Tick begin;
    Tick end;
    Addr addr;
    std::int32_t node;
    TxnClass cls;
};

class TraceSink
{
  public:
    /** Events retained before the ring recycles the oldest slab. */
    static constexpr std::size_t kDefaultCapacity = std::size_t{1}
                                                    << 20;

    explicit TraceSink(stats::StatSet &stats,
                       std::size_t capacity = kDefaultCapacity);

    /**
     * PDES engine mode: give every domain a private staging lane so
     * instrumentation calls from the parallel phase append to
     * thread-local storage; drainStaged() merges the lanes into the
     * ring at each window barrier in canonical (tick, domain,
     * deposit) order. Staged transaction ids carry the domain in
     * their top bits, disjoint from the serial-context id counter.
     */
    void enableDomainStaging(unsigned domains);

    /** Merge and clear all staging lanes (window barrier). */
    void drainStaged();

    /** Append one protocol event. */
    void
    record(Tick tick, Phase phase, NodeId node, Addr addr,
           std::uint64_t txn = 0, std::uint16_t aux = 0)
    {
        if (!_stages.empty()) {
            const int d = PdesEngine::currentDomain();
            if (d >= 0) {
                _stages[static_cast<unsigned>(d)].ops.push_back(
                    StagedOp{tick, txn, addr,
                             static_cast<std::int32_t>(node),
                             StagedOp::kRecord, phase,
                             TxnClass::Load, aux});
                return;
            }
        }
        recordDirect(tick, phase, node, addr, txn, aux);
    }

    /** Open a tracked transaction; returns its id (never 0). */
    std::uint64_t beginTxn(TxnClass cls, Tick tick, NodeId node,
                           Addr addr);

    /** Close a transaction: samples its latency distribution. */
    void endTxn(std::uint64_t id, Tick tick);

    /** Events recorded over the sink's lifetime. */
    std::uint64_t recorded() const { return _total; }

    /** Events currently retained (time-ordered window). */
    std::size_t
    size() const
    {
        return _total < _capacity ? static_cast<std::size_t>(_total)
                                  : _capacity;
    }

    /** Events overwritten by ring recycling. */
    std::uint64_t
    dropped() const
    {
        return _total < _capacity ? 0 : _total - _capacity;
    }

    /** The @p i'th retained event, oldest first; i < size(). */
    const TraceEvent &
    event(std::size_t i) const
    {
        std::size_t slot = (dropped() + i) % _capacity;
        return _chunks[slot / kChunkEvents][slot % kChunkEvents];
    }

    /** Lifetime count of events with the given phase. */
    std::uint64_t
    countPhase(Phase phase) const
    {
        return _phaseCounts[static_cast<std::size_t>(phase)];
    }

    /** Transactions begun but not yet ended. */
    std::size_t openTxns() const { return _open.size(); }

    /** Completed transactions, oldest first (ring-bounded). */
    const std::vector<CompletedTxn> &completed() const
    {
        return _completed;
    }

    /** Latency distribution for one transaction class. */
    const stats::Distribution &
    latency(TxnClass cls) const
    {
        return *_latency[static_cast<std::size_t>(cls)];
    }

    /**
     * Write the retained window as Chrome trace-event JSON.
     * Returns false if the file cannot be opened.
     */
    bool writeChromeJson(const std::string &path) const;

  private:
    static constexpr std::size_t kChunkEvents = std::size_t{1} << 16;
    static constexpr std::size_t kMaxCompletedTxns = std::size_t{1}
                                                     << 18;

    struct OpenTxn
    {
        Tick begin;
        Addr addr;
        std::int32_t node;
        TxnClass cls;
    };

    /** One staged instrumentation call (engine parallel phase). */
    struct StagedOp
    {
        static constexpr std::uint8_t kRecord = 0;
        static constexpr std::uint8_t kBegin = 1;
        static constexpr std::uint8_t kEnd = 2;

        Tick tick;
        std::uint64_t txn;
        Addr addr;
        std::int32_t node;
        std::uint8_t kind;
        Phase phase;  ///< kRecord only
        TxnClass cls; ///< kBegin only
        std::uint16_t aux;
    };

    /** Per-domain staging lane (engine mode). */
    struct alignas(64) StageLane
    {
        std::vector<StagedOp> ops;
        std::uint64_t nextTxn = 0;
    };

    /** Ring/counter append shared by both paths. */
    void
    recordDirect(Tick tick, Phase phase, NodeId node, Addr addr,
                 std::uint64_t txn, std::uint16_t aux)
    {
        std::size_t slot = _total % _capacity;
        std::size_t chunk = slot / kChunkEvents;
        if (chunk >= _chunks.size())
            _chunks.push_back(
                std::make_unique<TraceEvent[]>(kChunkEvents));
        _chunks[chunk][slot % kChunkEvents] =
            TraceEvent{tick, txn, addr,
                       static_cast<std::int32_t>(node), phase, aux};
        ++_total;
        ++_phaseCounts[static_cast<std::size_t>(phase)];
    }

    /** Open a transaction under a caller-chosen (staged) id. */
    void applyBegin(std::uint64_t id, TxnClass cls, Tick tick,
                    std::int32_t node, Addr addr);

    std::vector<StageLane> _stages;
    std::vector<StagedOp> _stageBuf;

    std::size_t _capacity;
    std::vector<std::unique_ptr<TraceEvent[]>> _chunks;
    std::uint64_t _total = 0;
    std::uint64_t _phaseCounts[kNumPhases] = {};

    std::uint64_t _nextTxn = 1;
    std::unordered_map<std::uint64_t, OpenTxn> _open;
    std::vector<CompletedTxn> _completed;
    std::uint64_t _droppedTxns = 0;

    stats::Handle<stats::Distribution> _latency[kNumTxnClasses];
};

} // namespace trace
} // namespace nosync

#endif // TRACE_TRACE_SINK_HH
