/**
 * @file
 * Binary trace event model.
 *
 * A TraceEvent is a fixed-size POD record of one protocol action at
 * one tick — cheap enough to append to a slab buffer on the simulator
 * hot path. Events carry a phase (which protocol seam fired), the
 * node it fired on, the line/word address involved, and optionally
 * the id of the issuing transaction (0 = unattributed: protocol-level
 * events triggered by asynchronous message arrival do not know which
 * thread-block access caused them; the address is the correlation
 * key there).
 */

#ifndef TRACE_TRACE_EVENT_HH
#define TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <type_traits>

#include "sim/types.hh"

namespace nosync
{
namespace trace
{

/** Which protocol seam emitted an event. */
enum class Phase : std::uint16_t
{
    /// L1 issued a read for missing words to the home L2 bank.
    L1MissIssue = 0,
    /// DeNovo L1 issued an ownership registration to the home bank.
    L1RegIssue,
    /// DeNovo L1 received a registration ack (ownership granted).
    L1RegAck,
    /// L1 wrote a line (ownership writeback / recall data) to L2.
    L1WritebackIssue,
    /// GPU L1 sent a writethrough group toward the home bank.
    L1WriteThrough,
    /// L2 bank served a read (from its array or after a DRAM fetch).
    L2ReadServe,
    /// L2 bank changed a word's registered owner.
    L2OwnerChange,
    /// L2 bank forwarded a request to the current L1 owner.
    L2Forward,
    /// L2 bank merged a writethrough into its array.
    L2WriteThrough,
    /// L2 bank executed an atomic at the bank.
    L2Atomic,
    /// Mesh accepted a message (aux = flit count).
    FlitEnqueue,
    /// Mesh delivered a message at its destination.
    FlitDeliver,
    /// A thread block issued an acquire-flavoured sync access.
    TbSyncAcquire,
    /// A thread block issued a release-flavoured sync access.
    TbSyncRelease,
    /// The device launched a kernel (aux = kernel index).
    KernelLaunch,
    /// All thread blocks of the current kernel drained.
    KernelDrain,
    NumPhases,
};

constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::NumPhases);

/** Stable display name for a phase (no spaces; JSON-safe). */
const char *phaseName(Phase phase);

/**
 * Latency class of a tracked transaction: one thread-block memory
 * access from issue to completion callback.
 */
enum class TxnClass : std::uint8_t
{
    Load = 0,
    Store,
    SyncAcquire,
    SyncRelease,
    SyncAcqRel,
    // Device-scope variants (multi-device machines). Appended so the
    // numeric values — and the trace.latency.<class> stat layout — of
    // the original classes never change.
    SyncAcquireDevice,
    SyncReleaseDevice,
    SyncAcqRelDevice,
    NumClasses,
};

constexpr std::size_t kNumTxnClasses =
    static_cast<std::size_t>(TxnClass::NumClasses);

/** Stable display name for a transaction class (JSON-safe). */
const char *txnClassName(TxnClass cls);

/** One protocol action. POD by design: slab-buffered in bulk. */
struct TraceEvent
{
    Tick tick;         ///< when the seam fired
    std::uint64_t txn; ///< issuing transaction id, 0 = unattributed
    Addr addr;         ///< line or word address involved
    std::int32_t node; ///< mesh node the seam fired on
    Phase phase;       ///< which seam
    std::uint16_t aux; ///< phase-specific payload (flits, kernel, ...)
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay POD: it is slab-buffered");
static_assert(sizeof(TraceEvent) == 32,
              "TraceEvent packing changed; check slab sizing");

} // namespace trace
} // namespace nosync

#endif // TRACE_TRACE_EVENT_HH
