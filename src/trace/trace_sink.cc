#include "trace/trace_sink.hh"

#include <algorithm>
#include <fstream>

#include "sim/logging.hh"

namespace nosync
{
namespace trace
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::L1MissIssue: return "L1MissIssue";
      case Phase::L1RegIssue: return "L1RegIssue";
      case Phase::L1RegAck: return "L1RegAck";
      case Phase::L1WritebackIssue: return "L1WritebackIssue";
      case Phase::L1WriteThrough: return "L1WriteThrough";
      case Phase::L2ReadServe: return "L2ReadServe";
      case Phase::L2OwnerChange: return "L2OwnerChange";
      case Phase::L2Forward: return "L2Forward";
      case Phase::L2WriteThrough: return "L2WriteThrough";
      case Phase::L2Atomic: return "L2Atomic";
      case Phase::FlitEnqueue: return "FlitEnqueue";
      case Phase::FlitDeliver: return "FlitDeliver";
      case Phase::TbSyncAcquire: return "TbSyncAcquire";
      case Phase::TbSyncRelease: return "TbSyncRelease";
      case Phase::KernelLaunch: return "KernelLaunch";
      case Phase::KernelDrain: return "KernelDrain";
      case Phase::NumPhases: break;
    }
    return "Unknown";
}

const char *
txnClassName(TxnClass cls)
{
    switch (cls) {
      case TxnClass::Load: return "load";
      case TxnClass::Store: return "store";
      case TxnClass::SyncAcquire: return "sync_acquire";
      case TxnClass::SyncRelease: return "sync_release";
      case TxnClass::SyncAcqRel: return "sync_acqrel";
      case TxnClass::SyncAcquireDevice: return "sync_acquire_device";
      case TxnClass::SyncReleaseDevice: return "sync_release_device";
      case TxnClass::SyncAcqRelDevice: return "sync_acqrel_device";
      case TxnClass::NumClasses: break;
    }
    return "unknown";
}

TraceSink::TraceSink(stats::StatSet &stats, std::size_t capacity)
    : _capacity(capacity ? capacity : 1)
{
    for (std::size_t c = 0; c < kNumTxnClasses; ++c) {
        TxnClass cls = static_cast<TxnClass>(c);
        _latency[c] = stats.registerDistribution(
            std::string("trace.latency.") + txnClassName(cls),
            std::string("issue-to-completion latency of ") +
                txnClassName(cls) + " accesses (cycles)");
    }
}

std::uint64_t
TraceSink::beginTxn(TxnClass cls, Tick tick, NodeId node, Addr addr)
{
    if (!_stages.empty()) {
        const int d = PdesEngine::currentDomain();
        if (d >= 0) {
            StageLane &lane = _stages[static_cast<unsigned>(d)];
            // Domain-tagged ids live above the 2^40 serial-id space,
            // so staged and direct transactions never collide.
            std::uint64_t id =
                (static_cast<std::uint64_t>(d + 1) << 40) |
                lane.nextTxn++;
            lane.ops.push_back(
                StagedOp{tick, id, addr,
                         static_cast<std::int32_t>(node),
                         StagedOp::kBegin, Phase::L1MissIssue, cls,
                         0});
            return id;
        }
    }
    std::uint64_t id = _nextTxn++;
    _open.emplace(id, OpenTxn{tick, addr,
                              static_cast<std::int32_t>(node), cls});
    return id;
}

void
TraceSink::enableDomainStaging(unsigned domains)
{
    _stages = std::vector<StageLane>(domains);
}

void
TraceSink::applyBegin(std::uint64_t id, TxnClass cls, Tick tick,
                      std::int32_t node, Addr addr)
{
    _open.emplace(id, OpenTxn{tick, addr, node, cls});
}

void
TraceSink::drainStaged()
{
    _stageBuf.clear();
    for (StageLane &lane : _stages) {
        for (StagedOp &op : lane.ops)
            _stageBuf.push_back(op);
        lane.ops.clear();
    }
    if (_stageBuf.empty())
        return;
    // Domain-major concatenation resolves same-tick ties by (domain,
    // deposit order) — both independent of worker packing.
    std::stable_sort(_stageBuf.begin(), _stageBuf.end(),
                     [](const StagedOp &a, const StagedOp &b) {
                         return a.tick < b.tick;
                     });
    for (const StagedOp &op : _stageBuf) {
        switch (op.kind) {
          case StagedOp::kRecord:
            recordDirect(op.tick, op.phase, op.node, op.addr, op.txn,
                         op.aux);
            break;
          case StagedOp::kBegin:
            applyBegin(op.txn, op.cls, op.tick, op.node, op.addr);
            break;
          default:
            endTxn(op.txn, op.tick);
            break;
        }
    }
}

void
TraceSink::endTxn(std::uint64_t id, Tick tick)
{
    if (!_stages.empty()) {
        const int d = PdesEngine::currentDomain();
        if (d >= 0) {
            _stages[static_cast<unsigned>(d)].ops.push_back(
                StagedOp{tick, id, 0, 0, StagedOp::kEnd,
                         Phase::L1MissIssue, TxnClass::Load, 0});
            return;
        }
    }
    auto it = _open.find(id);
    panic_if(it == _open.end(), "endTxn(", id,
             "): no such open transaction");
    const OpenTxn &open = it->second;
    _latency[static_cast<std::size_t>(open.cls)]->sample(
        static_cast<double>(tick - open.begin));
    // Completed-transaction storage is bounded separately from the
    // event ring; past the cap, latencies still feed the
    // distributions but the timeline entry is dropped.
    if (_completed.size() < kMaxCompletedTxns) {
        _completed.push_back(CompletedTxn{id, open.begin, tick,
                                          open.addr, open.node,
                                          open.cls});
    } else {
        ++_droppedTxns;
    }
    _open.erase(it);
}

bool
TraceSink::writeChromeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;

    out << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
        << "\"tool\":\"nosync-sim\",\"time_unit\":\"cycle\","
        << "\"events_recorded\":" << _total
        << ",\"events_dropped\":" << dropped()
        << ",\"txns_dropped\":" << _droppedTxns
        << "},\"traceEvents\":[";

    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",";
        first = false;
        out << "\n";
    };

    // Completed thread-block transactions render as duration events
    // on their CU's row, so a sync access visually spans the protocol
    // instants it caused.
    for (const CompletedTxn &txn : _completed) {
        sep();
        out << "{\"name\":\"" << txnClassName(txn.cls)
            << "\",\"ph\":\"X\",\"ts\":" << txn.begin
            << ",\"dur\":" << (txn.end - txn.begin)
            << ",\"pid\":0,\"tid\":" << txn.node
            << ",\"args\":{\"addr\":" << txn.addr
            << ",\"txn\":" << txn.id << "}}";
    }

    for (std::size_t i = 0; i < size(); ++i) {
        const TraceEvent &ev = event(i);
        sep();
        out << "{\"name\":\"" << phaseName(ev.phase)
            << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.tick
            << ",\"pid\":0,\"tid\":" << ev.node
            << ",\"args\":{\"addr\":" << ev.addr
            << ",\"txn\":" << ev.txn << ",\"aux\":" << ev.aux
            << "}}";
    }

    out << "\n]}\n";
    return static_cast<bool>(out);
}

} // namespace trace
} // namespace nosync
