/**
 * @file
 * Machine interconnect model (Garnet-inspired): a forest of WxH
 * meshes — one per device — joined by inter-device gateway links.
 *
 * Within a device: dimension-ordered (XY) routing over its grid.
 * Across devices: XY to the source device's gateway node, one
 * inter-device link (fully connected device pairs, each with its own
 * latency and flit-serialization class), then XY from the destination
 * gateway. Each unidirectional link carries one flit per
 * `cyclesPerFlit` cycles (mesh links: 1); a message serializes onto
 * every link it crosses and inherits queueing delay when links are
 * busy, which captures the bursty-writethrough contention that the
 * paper's GPU-coherence discussion hinges on. Flit crossings
 * (flits x links) are accounted per traffic class. A one-device
 * machine takes exactly the classic single-mesh paths, cycle for
 * cycle.
 *
 * Delivery is closure-based: the sender provides the action to run at
 * the destination when the message arrives, keeping the network
 * independent of protocol message formats. That seam also hosts the
 * optional DeliveryPolicy (FaultInjector chaos perturbation or the
 * model checker's ExploringPolicy) and an in-flight message registry
 * consumed by hang diagnostics.
 */

#ifndef NOC_MESH_HH
#define NOC_MESH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "noc/delivery_policy.hh"
#include "noc/fault_injector.hh"
#include "noc/topology.hh"
#include "noc/traffic.hh"
#include "sim/event_queue.hh"
#include "sim/pdes.hh"
#include "sim/sim_object.hh"
#include "sim/small_fn.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nosync
{

namespace trace
{
class TraceSink;
}

/**
 * Delivery action run at a message's destination. Sized so every
 * protocol closure in the tree — including the line-data-carrying
 * replies (a 64-byte LineData plus a reply functor) — stays in the
 * inline buffer and never touches the heap.
 */
using DeliverFn = SmallFn<112>;

/** A message injected but not yet delivered (diagnostics). */
struct InFlightMsg
{
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    TrafficClass cls = TrafficClass::Read;
    unsigned flits = 0;
    Tick sent = 0;
    Tick arrives = 0;
    bool duplicate = false;
};

/** Device forest with XY routing and per-link serialization. */
class Mesh : public SimObject
{
  public:
    Mesh(EventQueue &eq, stats::StatSet &stats,
         const MachineTopology &topo = MachineTopology{},
         trace::TraceSink *trace = nullptr);

    unsigned numNodes() const { return _topo.numNodes(); }

    /** The topology this fabric was built from. */
    const MachineTopology &topology() const { return _topo; }

    /** Links crossed between two nodes (inter-device link = 1). */
    unsigned hops(NodeId src, NodeId dst) const;

    /**
     * Send a message of @p flits flits from @p src to @p dst; @p
     * deliver runs at the destination's arrival tick. A sender marks
     * the message @p idempotent when delivering it twice is
     * harmless (pure requests whose responses are deduplicated by
     * the receiver); only such messages may be duplicated by an
     * attached fault injector (duplication copies the closure, so
     * idempotent closures must be copyable).
     */
    void send(NodeId src, NodeId dst, unsigned flits, TrafficClass cls,
              DeliverFn deliver, bool idempotent = false);

    /**
     * Best-case (uncontended) one-way latency between two nodes for a
     * message of @p flits flits. Used by tests and latency tables.
     */
    Cycles uncontendedLatency(NodeId src, NodeId dst,
                              unsigned flits) const;

    /** Total flit crossings in @p cls so far. */
    double flitCrossings(TrafficClass cls) const;

    /** Total flit crossings across all classes. */
    double totalFlitCrossings() const;

    // Delivery policy -------------------------------------------------
    /**
     * Attach (or detach, with nullptr) a delivery policy: the
     * chaos-testing FaultInjector or the model checker's
     * ExploringPolicy. At most one policy is active per mesh.
     */
    void setDeliveryPolicy(DeliveryPolicy *policy)
    {
        _delivery = policy;
    }
    DeliveryPolicy *deliveryPolicy() { return _delivery; }

    /** Convenience spelling for the chaos-testing policy. */
    void setFaultInjector(FaultInjector *inj) { _delivery = inj; }

    // PDES engine mode ------------------------------------------------
    /**
     * Switch the mesh into sharded-engine mode. Per-node ports take
     * over the in-flight slab and traffic counters so each domain
     * touches only its own cache lines during the parallel phase;
     * cross-domain sends are deposited with the engine and arbitrated
     * against the shared link state at window barriers via
     * drainEngineSends().
     */
    void setEngine(PdesEngine *engine);
    PdesEngine *engine() { return _engine; }

    /**
     * Barrier-phase arbitration of one window's cross-domain sends,
     * pre-sorted by (send tick, source node, deposit sequence). Walks
     * each route against the shared link-reservation table exactly as
     * the serial path would, applies the delivery policy with the
     * main RNG, and schedules every delivery into the destination
     * shard — all arrivals land at or after @p window_end by the
     * lookahead bound.
     */
    void drainEngineSends(std::vector<PdesEngine::MeshSend> &sends,
                          Tick window_end);

    /**
     * Fold the per-node traffic counters into the stats Vectors in
     * node order (then zero them). Called once before metrics are
     * read so reported stats are independent of domain packing.
     */
    void foldEngineStats();

    // Diagnostics -----------------------------------------------------
    /** Messages injected but not yet delivered, in injection order
     *  (engine mode: in (send tick, destination, sequence) order). */
    std::vector<InFlightMsg> inFlightSnapshot() const;

    /** Number of messages injected but not yet delivered. */
    std::size_t inFlightCount() const;

  private:
    /** Index of the unidirectional link from @p from to @p to. */
    std::size_t linkIndex(NodeId from, NodeId to) const;

    /** Next node on the XY route from @p at toward @p dst (same
     *  device; cross-device routes are stitched via gateways). */
    NodeId nextHop(NodeId at, NodeId dst) const;

    /** Append the intra-device XY route @p from -> @p to. */
    void appendLocalRoute(NodeId from, NodeId to, unsigned &num_hops);

    /** Track the message and schedule its delivery at @p arrives. */
    void scheduleDelivery(Tick arrives, NodeId src, NodeId dst,
                          TrafficClass cls, unsigned flits,
                          DeliverFn deliver, bool duplicate);

    /** Fill the per-pair route/hop tables (ctor helper). */
    void buildRouteTable();

    MachineTopology _topo;
    /** Earliest tick each unidirectional link is free. */
    std::vector<Tick> _linkFree;
    /** Per-link traversal latency: hopLatency on mesh links, the
     *  link class latency on inter-device links. */
    std::vector<Cycles> _linkLatency;
    /** Per-link flit serialization: 1 cycle/flit on mesh links, the
     *  link class cyclesPerFlit on inter-device links. */
    std::vector<Cycles> _linkFlitCycles;
    DeliveryPolicy *_delivery = nullptr;

    /**
     * Precomputed XY routes: for each (src, dst) pair, the link
     * indices the message crosses, flattened into one array with a
     * per-pair offset. hops(src, dst) is the segment length.
     */
    std::vector<std::uint16_t> _routeLinks;
    std::vector<std::uint32_t> _routeOffset; ///< src * numNodes + dst
    std::vector<std::uint8_t> _hopTable;

    /**
     * In-flight registry: slab-recycled records so steady-state
     * message traffic performs no allocation. Each record owns its
     * delivery closure; the scheduled event only carries {this,
     * slot}. Records keep their monotonic id for injection-order
     * diagnostics.
     */
    struct InFlightRecord
    {
        std::uint64_t id = 0;
        InFlightMsg msg;
        DeliverFn deliver;
        bool live = false;
    };
    /** Deliver and free the record in @p slot. */
    void deliverSlot(std::uint32_t slot);

    std::vector<InFlightRecord> _records;
    std::vector<std::uint32_t> _freeRecords;
    std::size_t _liveMsgs = 0;
    std::uint64_t _nextMsgId = 0;

    /**
     * Engine-mode per-node port: in-flight slab and traffic counters
     * owned by one domain during the parallel phase (local sends and
     * deliveries at that node) and by the barrier thread in between.
     * Cache-line aligned so neighbouring domains never false-share.
     */
    struct alignas(64) EnginePort
    {
        std::vector<InFlightRecord> records;
        std::vector<std::uint32_t> freeRecords;
        std::size_t liveMsgs = 0;
        std::uint64_t nextSeq = 0;
        std::array<double, kNumTrafficClasses> messages{};
        std::array<double, kNumTrafficClasses> crossings{};
    };

    /** Engine-mode send dispatch (domain-local vs deposited). */
    void engineSend(NodeId src, NodeId dst, unsigned flits,
                    TrafficClass cls, DeliverFn deliver,
                    bool idempotent);

    /** Engine-mode delivery scheduling into @p dst's shard/port. */
    void scheduleDeliveryEngine(Tick arrives, Tick sent, NodeId src,
                                NodeId dst, TrafficClass cls,
                                unsigned flits, DeliverFn deliver,
                                bool duplicate);

    /** Deliver and free engine record @p slot of @p dst's port. */
    void deliverSlotEngine(NodeId dst, std::uint32_t slot);

    PdesEngine *_engine = nullptr;
    std::vector<EnginePort> _ports;

    stats::Handle<stats::Vector> _flitCrossings;
    stats::Handle<stats::Vector> _messages;
    /** Observability sink; nullptr when tracing is disabled. */
    trace::TraceSink *_trace = nullptr;
};

} // namespace nosync

#endif // NOC_MESH_HH
