/**
 * @file
 * Machine topology: how many devices the machine has, the mesh
 * geometry each device replicates, and the inter-device link class
 * that joins them.
 *
 * A machine is a forest of identical WxH meshes (one per device)
 * plus a fully-connected set of inter-device links between the
 * devices' gateway nodes. Node ids are global and device-major:
 * device d owns nodes [d * nodesPerDevice(), (d+1) * nodesPerDevice()),
 * and within a device the local layout is exactly the single-device
 * mesh layout (CUs first, CPU/gateway node last). A one-device
 * machine is byte-for-byte the classic single-mesh system.
 */

#ifndef NOC_TOPOLOGY_HH
#define NOC_TOPOLOGY_HH

#include "sim/types.hh"

namespace nosync
{

/** Timing/size parameters of one device's mesh. */
struct MeshParams
{
    unsigned width = 4;
    unsigned height = 4;
    /** Per-hop router+link pipeline latency (cycles). */
    Cycles hopLatency = 3;
    /** Latency for a node talking to its own local slice. */
    Cycles localLatency = 1;
};

/**
 * The inter-device link class (NVLink/PCIe-style): higher latency and
 * lower per-flit bandwidth than an on-die mesh hop. Each ordered
 * device pair owns one unidirectional link; messages serialize onto
 * it in send order (FIFO per pair), exactly like a mesh link.
 */
struct InterDeviceLinkParams
{
    /** One-way link traversal latency (cycles). Must be at least the
     *  mesh hop latency so the PDES lookahead window stays valid. */
    Cycles latency = 24;
    /** Cycles each flit occupies the link (mesh links take 1). */
    Cycles cyclesPerFlit = 4;
};

/** Devices x per-device mesh geometry + inter-device link class. */
struct MachineTopology
{
    /** Number of devices; 1 reproduces the classic single machine. */
    unsigned devices = 1;

    /** Geometry replicated by every device. */
    MeshParams mesh{};

    /**
     * GPU compute units per device, at local nodes 0..cusPerDevice-1;
     * the last local node is the device's CPU core, which doubles as
     * the gateway the inter-device link attaches to.
     */
    unsigned cusPerDevice = 15;

    /** Inter-device link class (unused when devices == 1). */
    InterDeviceLinkParams link{};

    /** A single-device topology around an existing mesh geometry. */
    MachineTopology() = default;
    MachineTopology(const MeshParams &mesh_params) // NOLINT(google-explicit-constructor)
        : mesh(mesh_params)
    {
    }

    unsigned nodesPerDevice() const { return mesh.width * mesh.height; }
    unsigned numNodes() const { return devices * nodesPerDevice(); }
    unsigned totalCus() const { return devices * cusPerDevice; }

    /** Device owning global node @p node. */
    unsigned
    deviceOf(NodeId node) const
    {
        return static_cast<unsigned>(node) / nodesPerDevice();
    }

    /** Global node id of device @p d's gateway (its CPU node). */
    NodeId
    gatewayNode(unsigned d) const
    {
        return static_cast<NodeId>((d + 1) * nodesPerDevice() - 1);
    }

    /** Global mesh node hosting global CU @p cu's L1. */
    NodeId
    nodeOfCu(unsigned cu) const
    {
        unsigned d = cu / cusPerDevice;
        return static_cast<NodeId>(d * nodesPerDevice() +
                                   cu % cusPerDevice);
    }

    /** Device owning global CU @p cu. */
    unsigned deviceOfCu(unsigned cu) const { return cu / cusPerDevice; }

    /** Global CU whose L1 sits at node @p node, or -1 for a node
     *  hosting no CU (the gateway/CPU node of each device). */
    int
    cuOfNode(NodeId node) const
    {
        unsigned local = static_cast<unsigned>(node) % nodesPerDevice();
        if (local >= cusPerDevice)
            return -1;
        return static_cast<int>(deviceOf(node) * cusPerDevice + local);
    }
};

} // namespace nosync

#endif // NOC_TOPOLOGY_HH
