/**
 * @file
 * Network traffic classification.
 *
 * The paper reports network traffic in flit crossings split into four
 * classes (Figures 2c/3c/4c): data reads, data registrations (writes),
 * writebacks/writethroughs, and atomics. Every message a controller
 * sends is tagged with one of these.
 */

#ifndef NOC_TRAFFIC_HH
#define NOC_TRAFFIC_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nosync
{

/** Traffic class of a network message. */
enum class TrafficClass : unsigned
{
    Read = 0,      ///< data read requests/responses
    Registration,  ///< ownership (registration) requests/responses
    WriteBack,     ///< writethroughs, writebacks, and their acks
    Atomic,        ///< synchronization (atomic) requests/responses
    NumClasses,
};

constexpr std::size_t kNumTrafficClasses =
    static_cast<std::size_t>(TrafficClass::NumClasses);

/** Human-readable class names matching the paper's legend. */
inline const std::vector<std::string> &
trafficClassNames()
{
    static const std::vector<std::string> names = {
        "Read", "Regist", "WB_WT", "Atomics"};
    return names;
}

/** Flit geometry: 16-byte flits, one header flit per message. */
constexpr unsigned kFlitBytes = 16;

/** Flits needed for a message carrying @p payload_bytes of data. */
constexpr unsigned
flitsForPayload(unsigned payload_bytes)
{
    return 1 + (payload_bytes + kFlitBytes - 1) / kFlitBytes;
}

/** Flits for a control-only message. */
constexpr unsigned kControlFlits = 1;

/** Flits for a full-line data message. */
constexpr unsigned kLineFlits = flitsForPayload(kLineBytes);

/** Flits for a message carrying @p words words of data. */
constexpr unsigned
flitsForWords(unsigned words)
{
    return flitsForPayload(words * kWordBytes);
}

} // namespace nosync

#endif // NOC_TRAFFIC_HH
