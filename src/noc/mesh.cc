#include "noc/mesh.hh"

#include <cstdlib>

namespace nosync
{

Mesh::Mesh(EventQueue &eq, stats::StatSet &stats,
           const MeshParams &params)
    : SimObject("mesh", eq), _params(params),
      _flitCrossings(stats.vector("noc.flit_crossings",
                                  "flit-link crossings by class",
                                  trafficClassNames())),
      _messages(stats.vector("noc.messages",
                             "messages injected by class",
                             trafficClassNames()))
{
    // Each node has up to 4 outgoing links; index = node * 4 + dir.
    _linkFree.assign(static_cast<std::size_t>(numNodes()) * 4, 0);
}

unsigned
Mesh::hops(NodeId src, NodeId dst) const
{
    int sx = src % static_cast<int>(_params.width);
    int sy = src / static_cast<int>(_params.width);
    int dx = dst % static_cast<int>(_params.width);
    int dy = dst / static_cast<int>(_params.width);
    return static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy));
}

NodeId
Mesh::nextHop(NodeId at, NodeId dst) const
{
    int w = static_cast<int>(_params.width);
    int ax = at % w, ay = at / w;
    int dx = dst % w, dy = dst / w;
    // X first, then Y (dimension-ordered, deadlock-free).
    if (ax < dx)
        return at + 1;
    if (ax > dx)
        return at - 1;
    if (ay < dy)
        return at + w;
    return at - w;
}

std::size_t
Mesh::linkIndex(NodeId from, NodeId to) const
{
    int w = static_cast<int>(_params.width);
    int dir;
    if (to == from + 1)
        dir = 0; // east
    else if (to == from - 1)
        dir = 1; // west
    else if (to == from + w)
        dir = 2; // south
    else
        dir = 3; // north
    return static_cast<std::size_t>(from) * 4 +
           static_cast<std::size_t>(dir);
}

void
Mesh::scheduleDelivery(Tick arrives, NodeId src, NodeId dst,
                       TrafficClass cls, unsigned flits,
                       std::function<void()> deliver, bool duplicate)
{
    std::uint64_t id = _nextMsgId++;
    _inFlight.emplace(id, InFlightMsg{src, dst, cls, flits, curTick(),
                                      arrives, duplicate});
    eventQueue().schedule(
        arrives,
        [this, id, d = std::move(deliver)] {
            _inFlight.erase(id);
            d();
        },
        EventPriority::NetworkDelivery);
}

void
Mesh::send(NodeId src, NodeId dst, unsigned flits, TrafficClass cls,
           std::function<void()> deliver, bool idempotent)
{
    panic_if(src < 0 || dst < 0 ||
                 static_cast<unsigned>(src) >= numNodes() ||
                 static_cast<unsigned>(dst) >= numNodes(),
             "mesh.send with bad endpoints ", src, " -> ", dst);
    auto cls_idx = static_cast<std::size_t>(cls);
    _messages.add(cls_idx);

    unsigned num_hops = 0;
    Tick t;
    if (src == dst) {
        // Local slice access: no link crossings, small fixed delay.
        t = curTick() + _params.localLatency;
    } else {
        num_hops = hops(src, dst);
        _flitCrossings.add(cls_idx,
                           static_cast<double>(flits) * num_hops);

        // Walk the XY route accumulating serialization and queueing
        // delay on every link crossed.
        t = curTick();
        NodeId at = src;
        while (at != dst) {
            NodeId next = nextHop(at, dst);
            Tick &free_at = _linkFree[linkIndex(at, next)];
            Tick start = std::max(t, free_at);
            free_at = start + flits; // 1 flit / cycle / link
            t = start + flits + _params.hopLatency;
            at = next;
        }
    }

    if (_faults != nullptr) {
        t = _faults->adjust(src, dst, t);
        if (idempotent && _faults->rollDuplicate()) {
            // Second delivery of the same closure, after the first
            // (adjust() clamps to the pair's latest arrival, so the
            // duplicate never overtakes the original).
            Tick dup_t = _faults->adjust(
                src, dst, t + _faults->duplicateDelay());
            _messages.add(cls_idx);
            _flitCrossings.add(cls_idx,
                               static_cast<double>(flits) * num_hops);
            scheduleDelivery(dup_t, src, dst, cls, flits, deliver,
                             true);
        }
    }

    scheduleDelivery(t, src, dst, cls, flits, std::move(deliver),
                     false);
}

Cycles
Mesh::uncontendedLatency(NodeId src, NodeId dst, unsigned flits) const
{
    if (src == dst)
        return _params.localLatency;
    unsigned num_hops = hops(src, dst);
    return static_cast<Cycles>(num_hops) *
           (_params.hopLatency + flits);
}

double
Mesh::flitCrossings(TrafficClass cls) const
{
    return _flitCrossings.value(static_cast<std::size_t>(cls));
}

double
Mesh::totalFlitCrossings() const
{
    return _flitCrossings.total();
}

} // namespace nosync
