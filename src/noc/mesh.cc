#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "trace/trace_sink.hh"

namespace nosync
{

Mesh::Mesh(EventQueue &eq, stats::StatSet &stats,
           const MeshParams &params, trace::TraceSink *trace)
    : SimObject("mesh", eq), _params(params),
      _flitCrossings(stats.registerVector(
          "noc.flit_crossings", "flit-link crossings by class",
          trafficClassNames())),
      _messages(stats.registerVector("noc.messages",
                                     "messages injected by class",
                                     trafficClassNames())),
      _trace(trace)
{
    // Each node has up to 4 outgoing links; index = node * 4 + dir.
    _linkFree.assign(static_cast<std::size_t>(numNodes()) * 4, 0);
    buildRouteTable();
}

unsigned
Mesh::hops(NodeId src, NodeId dst) const
{
    return _hopTable[static_cast<std::size_t>(src) * numNodes() +
                     static_cast<std::size_t>(dst)];
}

NodeId
Mesh::nextHop(NodeId at, NodeId dst) const
{
    int w = static_cast<int>(_params.width);
    int ax = at % w, ay = at / w;
    int dx = dst % w, dy = dst / w;
    // X first, then Y (dimension-ordered, deadlock-free).
    if (ax < dx)
        return at + 1;
    if (ax > dx)
        return at - 1;
    if (ay < dy)
        return at + w;
    return at - w;
}

std::size_t
Mesh::linkIndex(NodeId from, NodeId to) const
{
    int w = static_cast<int>(_params.width);
    int dir;
    if (to == from + 1)
        dir = 0; // east
    else if (to == from - 1)
        dir = 1; // west
    else if (to == from + w)
        dir = 2; // south
    else
        dir = 3; // north
    return static_cast<std::size_t>(from) * 4 +
           static_cast<std::size_t>(dir);
}

void
Mesh::buildRouteTable()
{
    std::size_t n = numNodes();
    _routeOffset.assign(n * n + 1, 0);
    _hopTable.assign(n * n, 0);
    _routeLinks.clear();
    for (NodeId src = 0; src < static_cast<NodeId>(n); ++src) {
        for (NodeId dst = 0; dst < static_cast<NodeId>(n); ++dst) {
            std::size_t pair =
                static_cast<std::size_t>(src) * n +
                static_cast<std::size_t>(dst);
            _routeOffset[pair] =
                static_cast<std::uint32_t>(_routeLinks.size());
            NodeId at = src;
            unsigned num_hops = 0;
            while (at != dst) {
                NodeId next = nextHop(at, dst);
                _routeLinks.push_back(static_cast<std::uint16_t>(
                    linkIndex(at, next)));
                at = next;
                ++num_hops;
            }
            _hopTable[pair] = static_cast<std::uint8_t>(num_hops);
        }
    }
    _routeOffset[n * n] =
        static_cast<std::uint32_t>(_routeLinks.size());
}

void
Mesh::deliverSlot(std::uint32_t slot)
{
    InFlightRecord &rec = _records[slot];
    if (_trace) {
        _trace->record(curTick(), trace::Phase::FlitDeliver,
                       rec.msg.dst, 0, 0,
                       static_cast<std::uint16_t>(rec.msg.flits));
    }
    // Move the closure out before running it: delivery may send new
    // messages, growing the slab and recycling this very slot.
    DeliverFn fn = std::move(rec.deliver);
    rec.live = false;
    --_liveMsgs;
    _freeRecords.push_back(slot);
    fn();
}

void
Mesh::scheduleDelivery(Tick arrives, NodeId src, NodeId dst,
                       TrafficClass cls, unsigned flits,
                       DeliverFn deliver, bool duplicate)
{
    std::uint32_t slot;
    if (_freeRecords.empty()) {
        slot = static_cast<std::uint32_t>(_records.size());
        _records.emplace_back();
    } else {
        slot = _freeRecords.back();
        _freeRecords.pop_back();
    }
    InFlightRecord &rec = _records[slot];
    rec.id = _nextMsgId++;
    rec.msg = InFlightMsg{src,     dst,     cls,      flits,
                          curTick(), arrives, duplicate};
    rec.deliver = std::move(deliver);
    rec.live = true;
    ++_liveMsgs;

    eventQueue().schedule(arrives,
                          [this, slot] { deliverSlot(slot); },
                          EventPriority::NetworkDelivery);
}

void
Mesh::send(NodeId src, NodeId dst, unsigned flits, TrafficClass cls,
           DeliverFn deliver, bool idempotent)
{
    panic_if(src < 0 || dst < 0 ||
                 static_cast<unsigned>(src) >= numNodes() ||
                 static_cast<unsigned>(dst) >= numNodes(),
             "mesh.send with bad endpoints ", src, " -> ", dst);
    auto cls_idx = static_cast<std::size_t>(cls);
    _messages->add(cls_idx);
    if (_trace) {
        _trace->record(curTick(), trace::Phase::FlitEnqueue, src, 0,
                       0, static_cast<std::uint16_t>(flits));
    }

    unsigned num_hops = 0;
    Tick t;
    if (src == dst) {
        // Local slice access: no link crossings, small fixed delay.
        t = curTick() + _params.localLatency;
    } else {
        std::size_t pair = static_cast<std::size_t>(src) * numNodes() +
                           static_cast<std::size_t>(dst);
        num_hops = _hopTable[pair];
        _flitCrossings->add(cls_idx,
                            static_cast<double>(flits) * num_hops);

        // Walk the precomputed XY route accumulating serialization
        // and queueing delay on every link crossed.
        t = curTick();
        const std::uint16_t *link = &_routeLinks[_routeOffset[pair]];
        for (unsigned h = 0; h < num_hops; ++h, ++link) {
            Tick &free_at = _linkFree[*link];
            Tick start = std::max(t, free_at);
            free_at = start + flits; // 1 flit / cycle / link
            t = start + flits + _params.hopLatency;
        }
    }

    if (_delivery != nullptr) {
        t = _delivery->adjust(src, dst, t);
        if (idempotent && _delivery->rollDuplicate()) {
            // Second delivery of the same closure, after the first
            // (adjust() clamps to the pair's latest arrival, so the
            // duplicate never overtakes the original).
            Tick dup_t = _delivery->adjust(
                src, dst, t + _delivery->duplicateDelay());
            _messages->add(cls_idx);
            _flitCrossings->add(cls_idx,
                                static_cast<double>(flits) *
                                    num_hops);
            scheduleDelivery(dup_t, src, dst, cls, flits, deliver,
                             true);
        }
    }

    scheduleDelivery(t, src, dst, cls, flits, std::move(deliver),
                     false);
}

Cycles
Mesh::uncontendedLatency(NodeId src, NodeId dst, unsigned flits) const
{
    if (src == dst)
        return _params.localLatency;
    unsigned num_hops = hops(src, dst);
    return static_cast<Cycles>(num_hops) *
           (_params.hopLatency + flits);
}

double
Mesh::flitCrossings(TrafficClass cls) const
{
    return _flitCrossings->value(static_cast<std::size_t>(cls));
}

double
Mesh::totalFlitCrossings() const
{
    return _flitCrossings->total();
}

std::vector<InFlightMsg>
Mesh::inFlightSnapshot() const
{
    std::vector<const InFlightRecord *> live;
    for (const auto &rec : _records) {
        if (rec.live)
            live.push_back(&rec);
    }
    std::sort(live.begin(), live.end(),
              [](const InFlightRecord *a, const InFlightRecord *b) {
                  return a->id < b->id;
              });
    std::vector<InFlightMsg> out;
    out.reserve(live.size());
    for (const InFlightRecord *rec : live)
        out.push_back(rec->msg);
    return out;
}

} // namespace nosync
