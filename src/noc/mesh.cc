#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "trace/trace_sink.hh"

namespace nosync
{

Mesh::Mesh(EventQueue &eq, stats::StatSet &stats,
           const MachineTopology &topo, trace::TraceSink *trace)
    : SimObject("mesh", eq), _topo(topo),
      _flitCrossings(stats.registerVector(
          "noc.flit_crossings", "flit-link crossings by class",
          trafficClassNames())),
      _messages(stats.registerVector("noc.messages",
                                     "messages injected by class",
                                     trafficClassNames())),
      _trace(trace)
{
    // Each node has up to 4 outgoing mesh links (index = node * 4 +
    // dir); behind them sits one inter-device link per ordered device
    // pair (index = numNodes * 4 + srcDev * devices + dstDev).
    std::size_t mesh_links = static_cast<std::size_t>(numNodes()) * 4;
    std::size_t pair_links =
        static_cast<std::size_t>(_topo.devices) * _topo.devices;
    _linkFree.assign(mesh_links + pair_links, 0);
    _linkLatency.assign(mesh_links + pair_links,
                        _topo.mesh.hopLatency);
    _linkFlitCycles.assign(mesh_links + pair_links, 1);
    for (std::size_t l = mesh_links; l < _linkFree.size(); ++l) {
        _linkLatency[l] = _topo.link.latency;
        _linkFlitCycles[l] = _topo.link.cyclesPerFlit;
    }
    buildRouteTable();
}

unsigned
Mesh::hops(NodeId src, NodeId dst) const
{
    return _hopTable[static_cast<std::size_t>(src) * numNodes() +
                     static_cast<std::size_t>(dst)];
}

NodeId
Mesh::nextHop(NodeId at, NodeId dst) const
{
    int w = static_cast<int>(_topo.mesh.width);
    int per_dev = static_cast<int>(_topo.nodesPerDevice());
    int base = (at / per_dev) * per_dev;
    int al = at - base, dl = dst - base;
    int ax = al % w, ay = al / w;
    int dx = dl % w, dy = dl / w;
    // X first, then Y (dimension-ordered, deadlock-free).
    if (ax < dx)
        return at + 1;
    if (ax > dx)
        return at - 1;
    if (ay < dy)
        return at + w;
    return at - w;
}

std::size_t
Mesh::linkIndex(NodeId from, NodeId to) const
{
    int w = static_cast<int>(_topo.mesh.width);
    int dir;
    if (to == from + 1)
        dir = 0; // east
    else if (to == from - 1)
        dir = 1; // west
    else if (to == from + w)
        dir = 2; // south
    else
        dir = 3; // north
    return static_cast<std::size_t>(from) * 4 +
           static_cast<std::size_t>(dir);
}

void
Mesh::appendLocalRoute(NodeId from, NodeId to, unsigned &num_hops)
{
    NodeId at = from;
    while (at != to) {
        NodeId next = nextHop(at, to);
        _routeLinks.push_back(
            static_cast<std::uint16_t>(linkIndex(at, next)));
        at = next;
        ++num_hops;
    }
}

void
Mesh::buildRouteTable()
{
    std::size_t n = numNodes();
    _routeOffset.assign(n * n + 1, 0);
    _hopTable.assign(n * n, 0);
    _routeLinks.clear();
    for (NodeId src = 0; src < static_cast<NodeId>(n); ++src) {
        for (NodeId dst = 0; dst < static_cast<NodeId>(n); ++dst) {
            std::size_t pair =
                static_cast<std::size_t>(src) * n +
                static_cast<std::size_t>(dst);
            _routeOffset[pair] =
                static_cast<std::uint32_t>(_routeLinks.size());
            unsigned num_hops = 0;
            unsigned sd = _topo.deviceOf(src);
            unsigned dd = _topo.deviceOf(dst);
            if (sd == dd) {
                appendLocalRoute(src, dst, num_hops);
            } else {
                // XY to the source gateway, one inter-device link,
                // then XY from the destination gateway.
                appendLocalRoute(src, _topo.gatewayNode(sd), num_hops);
                _routeLinks.push_back(static_cast<std::uint16_t>(
                    n * 4 + sd * _topo.devices + dd));
                ++num_hops;
                appendLocalRoute(_topo.gatewayNode(dd), dst,
                                 num_hops);
            }
            _hopTable[pair] = static_cast<std::uint8_t>(num_hops);
        }
    }
    _routeOffset[n * n] =
        static_cast<std::uint32_t>(_routeLinks.size());
}

void
Mesh::deliverSlot(std::uint32_t slot)
{
    InFlightRecord &rec = _records[slot];
    if (_trace) {
        _trace->record(curTick(), trace::Phase::FlitDeliver,
                       rec.msg.dst, 0, 0,
                       static_cast<std::uint16_t>(rec.msg.flits));
    }
    // Move the closure out before running it: delivery may send new
    // messages, growing the slab and recycling this very slot.
    DeliverFn fn = std::move(rec.deliver);
    rec.live = false;
    --_liveMsgs;
    _freeRecords.push_back(slot);
    fn();
}

void
Mesh::scheduleDelivery(Tick arrives, NodeId src, NodeId dst,
                       TrafficClass cls, unsigned flits,
                       DeliverFn deliver, bool duplicate)
{
    std::uint32_t slot;
    if (_freeRecords.empty()) {
        slot = static_cast<std::uint32_t>(_records.size());
        _records.emplace_back();
    } else {
        slot = _freeRecords.back();
        _freeRecords.pop_back();
    }
    InFlightRecord &rec = _records[slot];
    rec.id = _nextMsgId++;
    rec.msg = InFlightMsg{src,     dst,     cls,      flits,
                          curTick(), arrives, duplicate};
    rec.deliver = std::move(deliver);
    rec.live = true;
    ++_liveMsgs;

    eventQueue().schedule(arrives,
                          [this, slot] { deliverSlot(slot); },
                          EventPriority::NetworkDelivery);
}

void
Mesh::send(NodeId src, NodeId dst, unsigned flits, TrafficClass cls,
           DeliverFn deliver, bool idempotent)
{
    panic_if(src < 0 || dst < 0 ||
                 static_cast<unsigned>(src) >= numNodes() ||
                 static_cast<unsigned>(dst) >= numNodes(),
             "mesh.send with bad endpoints ", src, " -> ", dst);
    if (_engine != nullptr) {
        engineSend(src, dst, flits, cls, std::move(deliver),
                   idempotent);
        return;
    }
    auto cls_idx = static_cast<std::size_t>(cls);
    _messages->add(cls_idx);
    if (_trace) {
        _trace->record(curTick(), trace::Phase::FlitEnqueue, src, 0,
                       0, static_cast<std::uint16_t>(flits));
    }

    unsigned num_hops = 0;
    Tick t;
    if (src == dst) {
        // Local slice access: no link crossings, small fixed delay.
        t = curTick() + _topo.mesh.localLatency;
    } else {
        std::size_t pair = static_cast<std::size_t>(src) * numNodes() +
                           static_cast<std::size_t>(dst);
        num_hops = _hopTable[pair];
        _flitCrossings->add(cls_idx,
                            static_cast<double>(flits) * num_hops);

        // Walk the precomputed route accumulating serialization and
        // queueing delay on every link crossed (mesh links serialize
        // one flit per cycle; inter-device links per their class).
        t = curTick();
        const std::uint16_t *link = &_routeLinks[_routeOffset[pair]];
        for (unsigned h = 0; h < num_hops; ++h, ++link) {
            Tick &free_at = _linkFree[*link];
            Tick start = std::max(t, free_at);
            Tick serialize = static_cast<Tick>(flits) *
                             _linkFlitCycles[*link];
            free_at = start + serialize;
            t = start + serialize + _linkLatency[*link];
        }
    }

    if (_delivery != nullptr) {
        t = _delivery->adjust(src, dst, t);
        if (idempotent && _delivery->rollDuplicate()) {
            // Second delivery of the same closure, after the first
            // (adjust() clamps to the pair's latest arrival, so the
            // duplicate never overtakes the original).
            Tick dup_t = _delivery->adjust(
                src, dst, t + _delivery->duplicateDelay());
            _messages->add(cls_idx);
            _flitCrossings->add(cls_idx,
                                static_cast<double>(flits) *
                                    num_hops);
            scheduleDelivery(dup_t, src, dst, cls, flits, deliver,
                             true);
        }
    }

    scheduleDelivery(t, src, dst, cls, flits, std::move(deliver),
                     false);
}

// PDES engine mode ---------------------------------------------------

void
Mesh::setEngine(PdesEngine *engine)
{
    _engine = engine;
    if (engine != nullptr)
        _ports = std::vector<EnginePort>(numNodes());
}

void
Mesh::engineSend(NodeId src, NodeId dst, unsigned flits,
                 TrafficClass cls, DeliverFn deliver, bool idempotent)
{
    const auto cls_idx = static_cast<std::size_t>(cls);
    const int d = PdesEngine::currentDomain();
    if (d >= 0) {
        // Parallel phase: the sender's controllers live in domain
        // `src`, so this thread owns port[src] (and, for local
        // traffic, port[dst] == port[src]).
        panic_if(d != src, "engine send from node ", src,
                 " inside domain ", d);
        EnginePort &port = _ports[static_cast<std::size_t>(src)];
        port.messages[cls_idx] += 1.0;
        const Tick now = _engine->shard(static_cast<unsigned>(d)).now();
        if (_trace) {
            _trace->record(now, trace::Phase::FlitEnqueue, src, 0, 0,
                           static_cast<std::uint16_t>(flits));
        }
        if (src == dst) {
            // Local slice traffic never leaves the domain: deliver
            // through this node's own shard, consulting the policy's
            // per-node lane so the roll sequence is domain-private.
            Tick t = now + _topo.mesh.localLatency;
            if (_delivery != nullptr) {
                t = _delivery->adjust(src, dst, t);
                if (idempotent && _delivery->rollDuplicate()) {
                    Tick dup_t = _delivery->adjust(
                        src, dst, t + _delivery->duplicateDelay());
                    port.messages[cls_idx] += 1.0;
                    scheduleDeliveryEngine(dup_t, now, src, dst, cls,
                                           flits, deliver, true);
                }
            }
            scheduleDeliveryEngine(t, now, src, dst, cls, flits,
                                   std::move(deliver), false);
        } else {
            port.crossings[cls_idx] +=
                static_cast<double>(flits) * hops(src, dst);
            _engine->pushSend(PdesEngine::MeshSend{
                src, dst, flits, static_cast<unsigned>(cls_idx), now,
                idempotent, std::move(deliver)});
        }
        return;
    }

    // Barrier/serial context (kernel bring-up and drain callbacks run
    // by the coordinator): every shard clock sits at the window end,
    // so the full serial arbitration is safe against the shared link
    // table and all stats go straight to the Vectors.
    _messages->add(cls_idx);
    const Tick now = eventQueue().now();
    if (_trace) {
        _trace->record(now, trace::Phase::FlitEnqueue, src, 0, 0,
                       static_cast<std::uint16_t>(flits));
    }
    unsigned num_hops = 0;
    Tick t;
    if (src == dst) {
        t = now + _topo.mesh.localLatency;
    } else {
        std::size_t pair = static_cast<std::size_t>(src) * numNodes() +
                           static_cast<std::size_t>(dst);
        num_hops = _hopTable[pair];
        _flitCrossings->add(cls_idx,
                            static_cast<double>(flits) * num_hops);
        t = now;
        const std::uint16_t *link = &_routeLinks[_routeOffset[pair]];
        for (unsigned h = 0; h < num_hops; ++h, ++link) {
            Tick &free_at = _linkFree[*link];
            Tick start = std::max(t, free_at);
            Tick serialize = static_cast<Tick>(flits) *
                             _linkFlitCycles[*link];
            free_at = start + serialize;
            t = start + serialize + _linkLatency[*link];
        }
    }
    if (_delivery != nullptr) {
        t = _delivery->adjust(src, dst, t);
        if (idempotent && _delivery->rollDuplicate()) {
            Tick dup_t = _delivery->adjust(
                src, dst, t + _delivery->duplicateDelay());
            _messages->add(cls_idx);
            _flitCrossings->add(cls_idx,
                                static_cast<double>(flits) *
                                    num_hops);
            scheduleDeliveryEngine(dup_t, now, src, dst, cls, flits,
                                   deliver, true);
        }
    }
    scheduleDeliveryEngine(t, now, src, dst, cls, flits,
                           std::move(deliver), false);
}

void
Mesh::drainEngineSends(std::vector<PdesEngine::MeshSend> &sends,
                       Tick window_end)
{
    for (PdesEngine::MeshSend &s : sends) {
        // Messages and crossings were counted in the sender's lane at
        // deposit time; here only the shared link walk remains.
        const auto cls = static_cast<TrafficClass>(s.cls);
        std::size_t pair = static_cast<std::size_t>(s.src) *
                               numNodes() +
                           static_cast<std::size_t>(s.dst);
        const unsigned num_hops = _hopTable[pair];
        Tick t = s.sent;
        const std::uint16_t *link = &_routeLinks[_routeOffset[pair]];
        for (unsigned h = 0; h < num_hops; ++h, ++link) {
            Tick &free_at = _linkFree[*link];
            Tick start = std::max(t, free_at);
            Tick serialize = static_cast<Tick>(s.flits) *
                             _linkFlitCycles[*link];
            free_at = start + serialize;
            t = start + serialize + _linkLatency[*link];
        }
        if (_delivery != nullptr) {
            t = _delivery->adjust(s.src, s.dst, t);
            if (s.idempotent && _delivery->rollDuplicate()) {
                Tick dup_t = _delivery->adjust(
                    s.src, s.dst, t + _delivery->duplicateDelay());
                _messages->add(s.cls);
                _flitCrossings->add(
                    s.cls, static_cast<double>(s.flits) * num_hops);
                scheduleDeliveryEngine(dup_t, s.sent, s.src, s.dst,
                                       cls, s.flits, s.deliver, true);
            }
        }
        panic_if(t < window_end,
                 "cross-domain arrival ", t, " inside window ending ",
                 window_end, " (lookahead too large)");
        scheduleDeliveryEngine(t, s.sent, s.src, s.dst, cls, s.flits,
                               std::move(s.deliver), false);
    }
}

void
Mesh::scheduleDeliveryEngine(Tick arrives, Tick sent, NodeId src,
                             NodeId dst, TrafficClass cls,
                             unsigned flits, DeliverFn deliver,
                             bool duplicate)
{
    // Barrier-context sends (kernel bring-up/drain callbacks run by
    // the coordinator mid-window) can compute arrivals before the
    // destination shard's clock, which already sits at the window
    // end. Clamp up: every shard holds exactly the window-end tick at
    // barriers, so the clamp is deterministic and thread-independent.
    // In-window sends always arrive at or after their own shard's
    // clock, making this a no-op on the parallel path.
    const Tick dst_now =
        _engine->shard(static_cast<unsigned>(dst)).now();
    if (arrives < dst_now)
        arrives = dst_now;
    EnginePort &port = _ports[static_cast<std::size_t>(dst)];
    std::uint32_t slot;
    if (port.freeRecords.empty()) {
        slot = static_cast<std::uint32_t>(port.records.size());
        port.records.emplace_back();
    } else {
        slot = port.freeRecords.back();
        port.freeRecords.pop_back();
    }
    InFlightRecord &rec = port.records[slot];
    // Ids order (destination, schedule sequence); snapshots sort by
    // (sent, id) so diagnostics stay packing-independent.
    rec.id = (static_cast<std::uint64_t>(dst + 1) << 40) |
             port.nextSeq++;
    rec.msg = InFlightMsg{src, dst, cls, flits, sent, arrives,
                          duplicate};
    rec.deliver = std::move(deliver);
    rec.live = true;
    ++port.liveMsgs;

    _engine->shard(static_cast<unsigned>(dst))
        .schedule(arrives,
                  [this, dst, slot] { deliverSlotEngine(dst, slot); },
                  EventPriority::NetworkDelivery);
}

void
Mesh::deliverSlotEngine(NodeId dst, std::uint32_t slot)
{
    EnginePort &port = _ports[static_cast<std::size_t>(dst)];
    InFlightRecord &rec = port.records[slot];
    if (_trace) {
        _trace->record(_engine->shard(static_cast<unsigned>(dst)).now(),
                       trace::Phase::FlitDeliver, rec.msg.dst, 0, 0,
                       static_cast<std::uint16_t>(rec.msg.flits));
    }
    DeliverFn fn = std::move(rec.deliver);
    rec.live = false;
    --port.liveMsgs;
    port.freeRecords.push_back(slot);
    fn();
}

void
Mesh::foldEngineStats()
{
    for (auto &port : _ports) {
        for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
            if (port.messages[c] != 0.0)
                _messages->add(c, port.messages[c]);
            if (port.crossings[c] != 0.0)
                _flitCrossings->add(c, port.crossings[c]);
            port.messages[c] = 0.0;
            port.crossings[c] = 0.0;
        }
    }
}

Cycles
Mesh::uncontendedLatency(NodeId src, NodeId dst, unsigned flits) const
{
    if (src == dst)
        return _topo.mesh.localLatency;
    std::size_t pair = static_cast<std::size_t>(src) * numNodes() +
                       static_cast<std::size_t>(dst);
    Cycles total = 0;
    const std::uint16_t *link = &_routeLinks[_routeOffset[pair]];
    for (unsigned h = 0; h < _hopTable[pair]; ++h, ++link) {
        total += _linkLatency[*link] +
                 static_cast<Cycles>(flits) * _linkFlitCycles[*link];
    }
    return total;
}

double
Mesh::flitCrossings(TrafficClass cls) const
{
    return _flitCrossings->value(static_cast<std::size_t>(cls));
}

double
Mesh::totalFlitCrossings() const
{
    return _flitCrossings->total();
}

std::size_t
Mesh::inFlightCount() const
{
    if (_engine == nullptr)
        return _liveMsgs;
    std::size_t live = 0;
    for (const auto &port : _ports)
        live += port.liveMsgs;
    return live;
}

std::vector<InFlightMsg>
Mesh::inFlightSnapshot() const
{
    std::vector<const InFlightRecord *> live;
    if (_engine == nullptr) {
        for (const auto &rec : _records) {
            if (rec.live)
                live.push_back(&rec);
        }
    } else {
        for (const auto &port : _ports) {
            for (const auto &rec : port.records) {
                if (rec.live)
                    live.push_back(&rec);
            }
        }
    }
    std::sort(live.begin(), live.end(),
              [](const InFlightRecord *a, const InFlightRecord *b) {
                  if (a->msg.sent != b->msg.sent)
                      return a->msg.sent < b->msg.sent;
                  return a->id < b->id;
              });
    std::vector<InFlightMsg> out;
    out.reserve(live.size());
    for (const InFlightRecord *rec : live)
        out.push_back(rec->msg);
    return out;
}

} // namespace nosync
