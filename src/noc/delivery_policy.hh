/**
 * @file
 * Message-delivery policy seam.
 *
 * The Mesh computes a nominal arrival tick for every message and then
 * consults an optional DeliveryPolicy, which may move the arrival
 * later (never earlier) and may request a duplicate delivery of
 * idempotent messages. Two implementations exist:
 *
 *  - FaultInjector (noc/fault_injector.hh): seeded random
 *    perturbation for chaos testing;
 *  - explore::ExploringPolicy (explore/exploring_policy.hh): the
 *    stateless model checker's replayable delivery-choice recorder,
 *    which forces specific cross-pair reorderings from a decision
 *    script.
 *
 * Every implementation must preserve same-pair FIFO: the protocols
 * rely on per-(src, dst) in-order delivery (DESIGN.md "ordering
 * invariants"), so an adjusted arrival must be clamped to the pair's
 * latest already-scheduled arrival. Reordering is only legal *across*
 * pairs — exactly the freedom a real adaptive/multi-VC network has.
 */

#ifndef NOC_DELIVERY_POLICY_HH
#define NOC_DELIVERY_POLICY_HH

#include "sim/types.hh"

namespace nosync
{

/** Hook deciding when (and how often) a mesh message is delivered. */
class DeliveryPolicy
{
  public:
    virtual ~DeliveryPolicy() = default;

    /**
     * Map a message's nominal arrival tick to its actual arrival
     * tick. Must return >= @p nominal and must preserve same-pair
     * FIFO (clamp to the pair's latest scheduled arrival).
     */
    virtual Tick adjust(NodeId src, NodeId dst, Tick nominal) = 0;

    /** Whether to deliver an idempotent message a second time. */
    virtual bool rollDuplicate() = 0;

    /** Extra delay of the duplicate delivery (must be >= 1). */
    virtual Cycles duplicateDelay() = 0;
};

} // namespace nosync

#endif // NOC_DELIVERY_POLICY_HH
