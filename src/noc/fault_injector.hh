/**
 * @file
 * Deterministic fault injection for the mesh interconnect.
 *
 * The injector perturbs message delivery at the Mesh::send seam:
 *  - latency jitter: a message arrives a few cycles late;
 *  - cross-pair reordering: occasional large delays let messages of
 *    *different* (src, dst) pairs overtake each other;
 *  - duplication: messages the sender flagged idempotent (e.g. GPU
 *    read requests) are occasionally delivered twice.
 *
 * Two properties are load-bearing:
 *  1. Same-pair FIFO is preserved. The protocols rely on per-(src,
 *     dst) in-order delivery (see DESIGN.md "ordering invariants"),
 *     so every perturbed arrival is clamped to the latest arrival
 *     already scheduled for its pair. Reordering therefore happens
 *     only *across* pairs, which is exactly the freedom a real
 *     adaptive/multi-VC network would have.
 *  2. Everything is deterministic. All randomness comes from one
 *     seeded Rng consumed in event order, so a (workload, config,
 *     fault seed) triple replays byte-for-byte.
 */

#ifndef NOC_FAULT_INJECTOR_HH
#define NOC_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "noc/delivery_policy.hh"
#include "sim/pdes.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace nosync
{

/** Knobs for the fault injector; all probabilities in [0, 1]. */
struct FaultConfig
{
    /** Master switch; everything below is ignored when false. */
    bool enabled = false;

    /** Seed for the fault Rng. Kept separate from SystemConfig::seed
     *  so the workload shape stays fixed while faults vary. */
    std::uint64_t seed = 1;

    /** Chance a message picks up small extra latency. */
    double jitterProb = 0.3;
    /** Maximum extra latency from jitter (uniform in [1, max]). */
    Cycles jitterMax = 24;

    /** Chance of a large delay (drives cross-pair reordering). */
    double reorderProb = 0.05;
    /** Maximum extra latency of a reorder-scale delay. */
    Cycles reorderMax = 400;

    /** Chance an idempotent message is delivered twice. */
    double dupProb = 0.05;
    /** Maximum gap between the two deliveries of a duplicate. */
    Cycles dupDelayMax = 64;
};

/** Deterministic, FIFO-preserving message perturbation. */
class FaultInjector : public DeliveryPolicy
{
  public:
    explicit FaultInjector(const FaultConfig &config)
        : _config(config), _rng(config.seed)
    {}

    const FaultConfig &config() const { return _config; }

    /**
     * PDES engine mode: give every mesh node a private fault lane — a
     * node-seeded Rng plus the node's local-delivery FIFO clamp — so
     * domains roll faults concurrently without sharing the main Rng.
     * Lane seeds derive deterministically from (seed, node), so the
     * roll sequence each node sees depends only on its own event
     * order, never on how domains are packed onto threads. Cross-node
     * messages are adjusted at window barriers (serial context) with
     * the main Rng in canonical drain order.
     */
    void
    enableLanes(unsigned nodes)
    {
        _lanes = std::vector<Lane>(nodes);
        for (unsigned n = 0; n < nodes; ++n)
            _lanes[n].rng = Rng(laneSeed(_config.seed, n));
    }

    /**
     * Perturb a message nominally arriving at @p nominal on the
     * (src, dst) pair, returning the faulted arrival tick. Clamps to
     * the pair's latest scheduled arrival so same-pair FIFO holds.
     */
    Tick
    adjust(NodeId src, NodeId dst, Tick nominal) override
    {
        Rng &rng = contextRng();
        std::uint64_t *jittered = &_jittered;
        std::uint64_t *delayed = &_delayed;
        const int d = _lanes.empty() ? -1
                                     : PdesEngine::currentDomain();
        if (d >= 0) {
            jittered = &_lanes[static_cast<unsigned>(d)].jittered;
            delayed = &_lanes[static_cast<unsigned>(d)].delayed;
        }
        Tick t = nominal;
        if (rng.chance(_config.jitterProb) && _config.jitterMax > 0) {
            t += rng.range(1, _config.jitterMax);
            ++*jittered;
        }
        if (rng.chance(_config.reorderProb) &&
            _config.reorderMax > 0) {
            t += rng.range(1, _config.reorderMax);
            ++*delayed;
        }
        // With lanes enabled, node-local traffic clamps against the
        // node's lane (written in-window by the owning domain and at
        // barriers by the serial thread — never concurrently);
        // cross-node traffic is only adjusted in serial context,
        // where the shared map is safe.
        Tick &last = (!_lanes.empty() && src == dst)
                         ? _lanes[static_cast<unsigned>(src)].lastLocal
                         : _lastArrival[pairKey(src, dst)];
        if (t < last)
            t = last; // preserve same-pair FIFO
        last = t;
        return t;
    }

    /** Whether to deliver an idempotent message a second time. */
    bool
    rollDuplicate() override
    {
        Rng &rng = contextRng();
        if (!rng.chance(_config.dupProb))
            return false;
        const int d = _lanes.empty() ? -1
                                     : PdesEngine::currentDomain();
        if (d >= 0)
            ++_lanes[static_cast<unsigned>(d)].duplicated;
        else
            ++_duplicated;
        return true;
    }

    /** Extra delay of the duplicate delivery (always >= 1, so the
     *  duplicate cannot be delivered before the original). */
    Cycles
    duplicateDelay() override
    {
        Cycles max = _config.dupDelayMax ? _config.dupDelayMax : 1;
        return static_cast<Cycles>(contextRng().range(1, max));
    }

    // Injection counters (diagnostics / reports) ----------------------
    std::uint64_t jittered() const { return laneSum(&Lane::jittered) + _jittered; }
    std::uint64_t delayed() const { return laneSum(&Lane::delayed) + _delayed; }
    std::uint64_t duplicated() const
    {
        return laneSum(&Lane::duplicated) + _duplicated;
    }

  private:
    /** Per-node engine lane; cache-line aligned against false
     *  sharing between neighbouring domains. */
    struct alignas(64) Lane
    {
        Rng rng{0};
        Tick lastLocal = 0;
        std::uint64_t jittered = 0;
        std::uint64_t delayed = 0;
        std::uint64_t duplicated = 0;
    };

    /** splitmix64-style mix of (seed, node) for lane Rng seeds. */
    static std::uint64_t
    laneSeed(std::uint64_t seed, unsigned node)
    {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (node + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** The calling context's Rng: a domain's lane in-window, the
     *  main Rng in serial/barrier context or legacy mode. */
    Rng &
    contextRng()
    {
        if (_lanes.empty())
            return _rng;
        const int d = PdesEngine::currentDomain();
        return d >= 0 ? _lanes[static_cast<unsigned>(d)].rng : _rng;
    }

    std::uint64_t
    laneSum(std::uint64_t Lane::*counter) const
    {
        std::uint64_t total = 0;
        for (const Lane &lane : _lanes)
            total += lane.*counter;
        return total;
    }

    static std::uint64_t
    pairKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst);
    }

    FaultConfig _config;
    Rng _rng;
    std::vector<Lane> _lanes;
    /** Latest arrival tick already scheduled per (src, dst) pair. */
    std::unordered_map<std::uint64_t, Tick> _lastArrival;

    std::uint64_t _jittered = 0;
    std::uint64_t _delayed = 0;
    std::uint64_t _duplicated = 0;
};

} // namespace nosync

#endif // NOC_FAULT_INJECTOR_HH
