/**
 * @file
 * Deterministic fault injection for the mesh interconnect.
 *
 * The injector perturbs message delivery at the Mesh::send seam:
 *  - latency jitter: a message arrives a few cycles late;
 *  - cross-pair reordering: occasional large delays let messages of
 *    *different* (src, dst) pairs overtake each other;
 *  - duplication: messages the sender flagged idempotent (e.g. GPU
 *    read requests) are occasionally delivered twice.
 *
 * Two properties are load-bearing:
 *  1. Same-pair FIFO is preserved. The protocols rely on per-(src,
 *     dst) in-order delivery (see DESIGN.md "ordering invariants"),
 *     so every perturbed arrival is clamped to the latest arrival
 *     already scheduled for its pair. Reordering therefore happens
 *     only *across* pairs, which is exactly the freedom a real
 *     adaptive/multi-VC network would have.
 *  2. Everything is deterministic. All randomness comes from one
 *     seeded Rng consumed in event order, so a (workload, config,
 *     fault seed) triple replays byte-for-byte.
 */

#ifndef NOC_FAULT_INJECTOR_HH
#define NOC_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>

#include "noc/delivery_policy.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace nosync
{

/** Knobs for the fault injector; all probabilities in [0, 1]. */
struct FaultConfig
{
    /** Master switch; everything below is ignored when false. */
    bool enabled = false;

    /** Seed for the fault Rng. Kept separate from SystemConfig::seed
     *  so the workload shape stays fixed while faults vary. */
    std::uint64_t seed = 1;

    /** Chance a message picks up small extra latency. */
    double jitterProb = 0.3;
    /** Maximum extra latency from jitter (uniform in [1, max]). */
    Cycles jitterMax = 24;

    /** Chance of a large delay (drives cross-pair reordering). */
    double reorderProb = 0.05;
    /** Maximum extra latency of a reorder-scale delay. */
    Cycles reorderMax = 400;

    /** Chance an idempotent message is delivered twice. */
    double dupProb = 0.05;
    /** Maximum gap between the two deliveries of a duplicate. */
    Cycles dupDelayMax = 64;
};

/** Deterministic, FIFO-preserving message perturbation. */
class FaultInjector : public DeliveryPolicy
{
  public:
    explicit FaultInjector(const FaultConfig &config)
        : _config(config), _rng(config.seed)
    {}

    const FaultConfig &config() const { return _config; }

    /**
     * Perturb a message nominally arriving at @p nominal on the
     * (src, dst) pair, returning the faulted arrival tick. Clamps to
     * the pair's latest scheduled arrival so same-pair FIFO holds.
     */
    Tick
    adjust(NodeId src, NodeId dst, Tick nominal) override
    {
        Tick t = nominal;
        if (_rng.chance(_config.jitterProb) && _config.jitterMax > 0) {
            t += _rng.range(1, _config.jitterMax);
            ++_jittered;
        }
        if (_rng.chance(_config.reorderProb) &&
            _config.reorderMax > 0) {
            t += _rng.range(1, _config.reorderMax);
            ++_delayed;
        }
        Tick &last = _lastArrival[pairKey(src, dst)];
        if (t < last)
            t = last; // preserve same-pair FIFO
        last = t;
        return t;
    }

    /** Whether to deliver an idempotent message a second time. */
    bool
    rollDuplicate() override
    {
        if (!_rng.chance(_config.dupProb))
            return false;
        ++_duplicated;
        return true;
    }

    /** Extra delay of the duplicate delivery (always >= 1, so the
     *  duplicate cannot be delivered before the original). */
    Cycles
    duplicateDelay() override
    {
        Cycles max = _config.dupDelayMax ? _config.dupDelayMax : 1;
        return static_cast<Cycles>(_rng.range(1, max));
    }

    // Injection counters (diagnostics / reports) ----------------------
    std::uint64_t jittered() const { return _jittered; }
    std::uint64_t delayed() const { return _delayed; }
    std::uint64_t duplicated() const { return _duplicated; }

  private:
    static std::uint64_t
    pairKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst);
    }

    FaultConfig _config;
    Rng _rng;
    /** Latest arrival tick already scheduled per (src, dst) pair. */
    std::unordered_map<std::uint64_t, Tick> _lastArrival;

    std::uint64_t _jittered = 0;
    std::uint64_t _delayed = 0;
    std::uint64_t _duplicated = 0;
};

} // namespace nosync

#endif // NOC_FAULT_INJECTOR_HH
