/**
 * @file
 * Set-associative cache tag/data array with per-word coherence state.
 *
 * One line type serves every protocol in the study:
 *  - GPU L1s use the line-valid bit plus (under HRF) the per-word dirty
 *    mask for partial-block flushes.
 *  - DeNovo L1s use the per-word Invalid/Valid/Registered states.
 *  - DeNovo L2 banks (the registry) additionally use the per-word owner
 *    field: a word is either backed by data here or registered to an L1.
 * Unused fields cost simulator memory only, never simulated time.
 */

#ifndef MEM_CACHE_ARRAY_HH
#define MEM_CACHE_ARRAY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/functional_mem.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/** Per-word coherence state (DeNovo's three stable states). */
enum class WordState : std::uint8_t
{
    Invalid = 0,
    Valid = 1,
    Registered = 2,
};

/** One cache line frame. */
struct CacheLine
{
    /** Line-aligned address of the cached block; meaningless unless
     *  valid. */
    Addr addr = 0;

    /** Whether the frame holds a line at all. */
    bool valid = false;

    /** Word values. */
    LineData data{};

    /** Per-word coherence state (DeNovo). */
    std::array<WordState, kWordsPerLine> wstate{};

    /** Per-word owner node (DeNovo L2 registry only). */
    std::array<std::int16_t, kWordsPerLine> owner{};

    /** Words written locally and not yet made globally visible. */
    WordMask dirty = 0;

    /** Words belonging to the software read-only region (DD+RO). */
    WordMask readOnly = 0;

    /**
     * RegionMap::version() at which `readOnly` was snapshotted. A
     * resident line whose stamp lags the live map re-snapshots before
     * the mask is trusted (regions re-declared between kernels must
     * not leave stale masks exempting words from self-invalidation).
     */
    std::uint32_t regionVersion = 0;

    /** LRU timestamp. */
    std::uint64_t lruStamp = 0;

    /**
     * Acquire epoch at which this line's Valid words were filled.
     * L1 controllers implement flash/self invalidation lazily: an
     * acquire bumps the controller's epoch in O(1), and a line whose
     * epoch lags is swept on next touch. Registered words (DeNovo),
     * read-only-region words (DD+RO), and locally dirty words (GPU
     * HRF) are exempt from the sweep per their protocol's rules.
     */
    std::uint64_t epoch = 0;

    /** Mask of words in the given state. */
    WordMask
    maskInState(WordState st) const
    {
        WordMask mask = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (wstate[w] == st)
                mask |= static_cast<WordMask>(1u << w);
        }
        return mask;
    }

    /** Reset the frame to an empty state. */
    void
    clear()
    {
        valid = false;
        dirty = 0;
        readOnly = 0;
        regionVersion = 0;
        epoch = 0;
        data = LineData{};
        wstate.fill(WordState::Invalid);
        owner.fill(static_cast<std::int16_t>(kNoNode));
    }
};

/**
 * Tag/data array with LRU replacement.
 *
 * Pure storage: all timing and protocol decisions live in the
 * controllers. Victim selection never evicts here; the controller asks
 * for a victim, performs any writeback/recall protocol work, then
 * installs the new line.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     */
    CacheArray(std::size_t size_bytes, unsigned assoc)
        : _assoc(assoc), _numSets(size_bytes / kLineBytes / assoc),
          _lines(_numSets * assoc)
    {
        panic_if(_numSets == 0, "cache too small: ", size_bytes, " B / ",
                 assoc, "-way");
        panic_if((_numSets & (_numSets - 1)) != 0,
                 "number of sets must be a power of two, got ",
                 _numSets);
        for (auto &line : _lines)
            line.clear();
    }

    unsigned assoc() const { return _assoc; }
    std::size_t numSets() const { return _numSets; }

    /** Find the frame holding @p line_addr, or nullptr. */
    CacheLine *
    lookup(Addr line_addr)
    {
        line_addr = lineAlign(line_addr);
        CacheLine *set = setBase(line_addr);
        for (unsigned way = 0; way < _assoc; ++way) {
            if (set[way].valid && set[way].addr == line_addr)
                return &set[way];
        }
        return nullptr;
    }

    const CacheLine *
    lookup(Addr line_addr) const
    {
        return const_cast<CacheArray *>(this)->lookup(line_addr);
    }

    /**
     * Pick the replacement victim frame for @p line_addr: an invalid
     * frame if one exists, otherwise the LRU frame. The caller is
     * responsible for cleaning up the victim's contents before reuse.
     */
    CacheLine *
    findVictim(Addr line_addr)
    {
        CacheLine *set = setBase(lineAlign(line_addr));
        CacheLine *victim = &set[0];
        for (unsigned way = 0; way < _assoc; ++way) {
            if (!set[way].valid)
                return &set[way];
            if (set[way].lruStamp < victim->lruStamp)
                victim = &set[way];
        }
        return victim;
    }

    /**
     * Victim selection with a preference predicate: an invalid frame
     * if any, else the LRU frame satisfying @p preferred, else the
     * overall LRU frame. Used by the DeNovo registry to avoid
     * evicting lines with registered words when possible.
     */
    template <typename Pred>
    CacheLine *
    findVictimPreferring(Addr line_addr, Pred &&preferred)
    {
        CacheLine *set = setBase(lineAlign(line_addr));
        CacheLine *best_pref = nullptr;
        CacheLine *best_any = &set[0];
        for (unsigned way = 0; way < _assoc; ++way) {
            CacheLine &line = set[way];
            if (!line.valid)
                return &line;
            if (line.lruStamp < best_any->lruStamp)
                best_any = &line;
            if (preferred(line) &&
                (!best_pref || line.lruStamp < best_pref->lruStamp)) {
                best_pref = &line;
            }
        }
        return best_pref ? best_pref : best_any;
    }

    /** Mark @p line most recently used. */
    void touch(CacheLine &line) { line.lruStamp = ++_lruCounter; }

    /**
     * Install a (previously cleaned) frame for @p line_addr and mark it
     * most recently used.
     */
    void
    install(CacheLine &frame, Addr line_addr)
    {
        frame.clear();
        frame.addr = lineAlign(line_addr);
        frame.valid = true;
        touch(frame);
    }

    /** Iterate over every valid frame (for flash operations). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &line : _lines) {
            if (line.valid)
                fn(line);
        }
    }

    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &line : _lines) {
            if (line.valid)
                fn(line);
        }
    }

  private:
    CacheLine *
    setBase(Addr line_addr)
    {
        std::size_t set =
            (line_addr / kLineBytes) & (_numSets - 1);
        return &_lines[set * _assoc];
    }

    unsigned _assoc;
    std::size_t _numSets;
    std::vector<CacheLine> _lines;
    std::uint64_t _lruCounter = 0;
};

} // namespace nosync

#endif // MEM_CACHE_ARRAY_HH
