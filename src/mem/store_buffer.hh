/**
 * @file
 * Coalescing store buffer.
 *
 * Both protocol families buffer data stores next to the L1 (Table 3:
 * 256 entries). Entries are word-granularity and coalesce: a second
 * store to a buffered word overwrites in place. On a release (or
 * overflow, or kernel end) the controller drains the buffer — GPU
 * coherence writes the words through to the L2; DeNovo issues
 * registration (ownership) requests instead.
 */

#ifndef MEM_STORE_BUFFER_HH
#define MEM_STORE_BUFFER_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/** Word-granularity coalescing write buffer. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(std::size_t capacity) : _capacity(capacity) {}

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _entries.size(); }
    bool empty() const { return _entries.empty(); }
    bool full() const { return _entries.size() >= _capacity; }

    /** Whether a buffered store to @p addr exists. */
    bool
    contains(Addr addr) const
    {
        return _entries.count(wordAlign(addr)) != 0;
    }

    /** Value of the buffered store to @p addr. @pre contains(addr) */
    std::uint32_t
    value(Addr addr) const
    {
        auto it = _entries.find(wordAlign(addr));
        panic_if(it == _entries.end(), "store buffer miss on value()");
        return it->second;
    }

    /**
     * Insert or coalesce a store.
     * @return true if the store coalesced into an existing entry.
     * @pre !full() unless the word is already buffered
     */
    bool
    insert(Addr addr, std::uint32_t value)
    {
        Addr waddr = wordAlign(addr);
        auto it = _entries.find(waddr);
        if (it != _entries.end()) {
            it->second = value;
            return true;
        }
        panic_if(full(), "store buffer overflow must be drained by the "
                 "controller before insert");
        _entries.emplace(waddr, value);
        return false;
    }

    /** Remove the entry for @p addr if present. */
    void erase(Addr addr) { _entries.erase(wordAlign(addr)); }

    /** Drop every entry. */
    void clear() { _entries.clear(); }

    /** One line's worth of drained stores. */
    struct DrainGroup
    {
        Addr lineAddr;
        WordMask mask;
        LineData data;
    };

    /**
     * Collect all buffered stores grouped by cache line, clearing the
     * buffer. Groups are ordered by line address for determinism.
     */
    std::vector<DrainGroup>
    drain()
    {
        std::map<Addr, DrainGroup> groups;
        for (const auto &kv : _entries) {
            Addr line_addr = lineAlign(kv.first);
            auto [it, inserted] = groups.try_emplace(
                line_addr, DrainGroup{line_addr, 0, LineData{}});
            unsigned w = wordInLine(kv.first);
            it->second.mask |= static_cast<WordMask>(1u << w);
            it->second.data[w] = kv.second;
        }
        _entries.clear();
        std::vector<DrainGroup> out;
        out.reserve(groups.size());
        for (auto &kv : groups)
            out.push_back(kv.second);
        return out;
    }

  private:
    std::size_t _capacity;
    std::unordered_map<Addr, std::uint32_t> _entries;
};

} // namespace nosync

#endif // MEM_STORE_BUFFER_HH
