/**
 * @file
 * Functional backing store for the unified address space.
 *
 * Holds the architectural contents of DRAM at word granularity. Timing
 * components (L2 banks) read and write lines here when they miss or
 * write back; the store itself is untimed.
 */

#ifndef MEM_FUNCTIONAL_MEM_HH
#define MEM_FUNCTIONAL_MEM_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace nosync
{

/** Contents of one cache line. */
using LineData = std::array<std::uint32_t, kWordsPerLine>;

/**
 * Sparse word-addressable memory image; unwritten words read as 0.
 *
 * The image can be interleaved into independent shards keyed by line
 * number — the same `line % shards` mapping the L2 banks use — so
 * that under the PDES engine each bank (and therefore each domain)
 * touches a private map with no cross-thread sharing. Interleaving is
 * pure internal layout: contents and behaviour are unchanged.
 */
class FunctionalMem
{
  public:
    FunctionalMem() : _shards(1) {}

    /**
     * Re-shard the image by line number. Must be called before any
     * contents exist (System does so at construction).
     */
    void
    setInterleave(std::size_t shards)
    {
        _shards = std::vector<ShardMap>(shards ? shards : 1);
    }

    /** Read one word. */
    std::uint32_t
    readWord(Addr addr) const
    {
        const ShardMap &lines = shardFor(addr);
        auto it = lines.find(lineAlign(addr));
        if (it == lines.end())
            return 0;
        return it->second[wordInLine(addr)];
    }

    /** Write one word. */
    void
    writeWord(Addr addr, std::uint32_t value)
    {
        shardFor(addr)[lineAlign(addr)][wordInLine(addr)] = value;
    }

    /** Read a whole line (zero-filled if untouched). */
    LineData
    readLine(Addr line_addr) const
    {
        const ShardMap &lines = shardFor(line_addr);
        auto it = lines.find(lineAlign(line_addr));
        if (it == lines.end())
            return LineData{};
        return it->second;
    }

    /** Write back the words selected by @p mask from @p data. */
    void
    writeLineMasked(Addr line_addr, const LineData &data, WordMask mask)
    {
        LineData &line = shardFor(line_addr)[lineAlign(line_addr)];
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (mask & (1u << w))
                line[w] = data[w];
        }
    }

    /** Number of lines ever touched. */
    std::size_t
    footprintLines() const
    {
        std::size_t lines = 0;
        for (const ShardMap &shard : _shards)
            lines += shard.size();
        return lines;
    }

  private:
    using ShardMap = std::unordered_map<Addr, LineData>;

    ShardMap &
    shardFor(Addr addr)
    {
        return _shards[(lineAlign(addr) / kLineBytes) %
                       _shards.size()];
    }

    const ShardMap &
    shardFor(Addr addr) const
    {
        return _shards[(lineAlign(addr) / kLineBytes) %
                       _shards.size()];
    }

    std::vector<ShardMap> _shards;
};

} // namespace nosync

#endif // MEM_FUNCTIONAL_MEM_HH
