/**
 * @file
 * Functional backing store for the unified address space.
 *
 * Holds the architectural contents of DRAM at word granularity. Timing
 * components (L2 banks) read and write lines here when they miss or
 * write back; the store itself is untimed.
 */

#ifndef MEM_FUNCTIONAL_MEM_HH
#define MEM_FUNCTIONAL_MEM_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace nosync
{

/** Contents of one cache line. */
using LineData = std::array<std::uint32_t, kWordsPerLine>;

/** Sparse word-addressable memory image; unwritten words read as 0. */
class FunctionalMem
{
  public:
    /** Read one word. */
    std::uint32_t
    readWord(Addr addr) const
    {
        auto it = _lines.find(lineAlign(addr));
        if (it == _lines.end())
            return 0;
        return it->second[wordInLine(addr)];
    }

    /** Write one word. */
    void
    writeWord(Addr addr, std::uint32_t value)
    {
        _lines[lineAlign(addr)][wordInLine(addr)] = value;
    }

    /** Read a whole line (zero-filled if untouched). */
    LineData
    readLine(Addr line_addr) const
    {
        auto it = _lines.find(lineAlign(line_addr));
        if (it == _lines.end())
            return LineData{};
        return it->second;
    }

    /** Write back the words selected by @p mask from @p data. */
    void
    writeLineMasked(Addr line_addr, const LineData &data, WordMask mask)
    {
        LineData &line = _lines[lineAlign(line_addr)];
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            if (mask & (1u << w))
                line[w] = data[w];
        }
    }

    /** Number of lines ever touched. */
    std::size_t footprintLines() const { return _lines.size(); }

  private:
    std::unordered_map<Addr, LineData> _lines;
};

} // namespace nosync

#endif // MEM_FUNCTIONAL_MEM_HH
