/**
 * @file
 * Miss status holding register table.
 *
 * Tracks outstanding transactions per cache line. The payload type is
 * protocol-specific (each controller defines what it must remember for
 * an in-flight line), so the table is a small template providing
 * allocation, lookup, and capacity accounting.
 */

#ifndef MEM_MSHR_HH
#define MEM_MSHR_HH

#include <map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/**
 * MSHR table keyed by line address.
 *
 * Backed by std::map so payload pointers stay valid across
 * insertions: handler code frequently resumes workload coroutines
 * that immediately issue new requests (allocating entries) while the
 * handler still holds a payload pointer. Erasure still invalidates,
 * so handlers re-find() after running callbacks.
 */
template <typename PayloadT>
class MshrTable
{
  public:
    explicit MshrTable(std::size_t capacity) : _capacity(capacity) {}

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _entries.size(); }
    bool full() const { return _entries.size() >= _capacity; }

    /** Find the entry for @p line_addr, or nullptr. */
    PayloadT *
    find(Addr line_addr)
    {
        auto it = _entries.find(lineAlign(line_addr));
        return it == _entries.end() ? nullptr : &it->second;
    }

    /**
     * Allocate a fresh entry.
     * @pre no entry exists for the line and the table is not full
     */
    PayloadT &
    allocate(Addr line_addr)
    {
        line_addr = lineAlign(line_addr);
        panic_if(full(), "MSHR table overflow");
        auto [it, inserted] = _entries.try_emplace(line_addr);
        panic_if(!inserted, "duplicate MSHR allocation for line ",
                 line_addr);
        return it->second;
    }

    /** Release the entry for @p line_addr. */
    void
    deallocate(Addr line_addr)
    {
        std::size_t erased = _entries.erase(lineAlign(line_addr));
        panic_if(erased == 0, "deallocating absent MSHR entry");
    }

    /** Iterate over all entries (diagnostics only). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &kv : _entries)
            fn(kv.first, kv.second);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : _entries)
            fn(kv.first, kv.second);
    }

  private:
    std::size_t _capacity;
    std::map<Addr, PayloadT> _entries;
};

} // namespace nosync

#endif // MEM_MSHR_HH
