/**
 * @file
 * Miss status holding register table.
 *
 * Tracks outstanding transactions per cache line. The payload type is
 * protocol-specific (each controller defines what it must remember for
 * an in-flight line), so the table is a small template providing
 * allocation, lookup, and capacity accounting.
 */

#ifndef MEM_MSHR_HH
#define MEM_MSHR_HH

#include "mem/line_table.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

/**
 * MSHR table keyed by line address.
 *
 * Backed by an open-addressed LineTable whose payload slots are
 * slab-stable, so payload pointers stay valid across insertions:
 * handler code frequently resumes workload coroutines that
 * immediately issue new requests (allocating entries) while the
 * handler still holds a payload pointer. Erasure still invalidates,
 * so handlers re-find() after running callbacks.
 */
template <typename PayloadT>
class MshrTable
{
  public:
    explicit MshrTable(std::size_t capacity)
        : _table(capacity), _capacity(capacity)
    {
    }

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _table.size(); }
    bool full() const { return _table.size() >= _capacity; }

    /** Find the entry for @p line_addr, or nullptr. */
    PayloadT *
    find(Addr line_addr)
    {
        return _table.find(line_addr);
    }

    const PayloadT *
    find(Addr line_addr) const
    {
        return _table.find(line_addr);
    }

    /**
     * Allocate a fresh entry.
     * @pre no entry exists for the line and the table is not full
     */
    PayloadT &
    allocate(Addr line_addr)
    {
        panic_if(full(), "MSHR table overflow");
        panic_if(_table.contains(line_addr),
                 "duplicate MSHR allocation for line ",
                 lineAlign(line_addr));
        return _table.insert(line_addr);
    }

    /** Release the entry for @p line_addr. */
    void
    deallocate(Addr line_addr)
    {
        panic_if(!_table.erase(line_addr),
                 "deallocating absent MSHR entry");
    }

    /** Iterate over all entries in address order (diagnostics only). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        _table.forEachSorted(std::forward<Fn>(fn));
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        _table.forEachSorted(std::forward<Fn>(fn));
    }

  private:
    LineTable<PayloadT> _table;
    std::size_t _capacity;
};

} // namespace nosync

#endif // MEM_MSHR_HH
