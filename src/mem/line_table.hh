/**
 * @file
 * Open-addressed, line-address-keyed hash table with slab-stable
 * payload slots.
 *
 * The simulator keys most of its transient per-line state (MSHRs, L2
 * recall state, writeback buffers) by line address. At small machine
 * sizes a `std::map` was fine; at 64 mesh nodes the per-access node
 * allocation and pointer chasing dominate the controller hot paths.
 * LineTable replaces that with:
 *
 *  - an open-addressed index (linear probing, fibonacci hashing,
 *    backward-shift deletion — no tombstones, so probe chains never
 *    rot under churn), storing 32-bit slot ids; and
 *  - a chunked payload slab: slots live in fixed-size chunks that are
 *    never moved or freed, so **payload pointers stay valid** across
 *    any sequence of insertions and erasures of *other* keys. Erasing
 *    a key destroys its payload and recycles the slot via a free
 *    list, so steady-state churn performs no allocation.
 *
 * Growth reallocates only the bucket index, never the slabs — the
 * pointer-stability contract holds across growth too.
 */

#ifndef MEM_LINE_TABLE_HH
#define MEM_LINE_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nosync
{

template <typename PayloadT>
class LineTable
{
  public:
    /** @p expected sizes the initial index (it still grows on demand). */
    explicit LineTable(std::size_t expected = 0)
    {
        std::size_t buckets = 16;
        while (buckets < expected * 2)
            buckets *= 2;
        _buckets.assign(buckets, 0);
        _shift = shiftFor(buckets);
    }

    LineTable(const LineTable &) = delete;
    LineTable &operator=(const LineTable &) = delete;

    ~LineTable() { clear(); }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /** Payload for @p line_addr, or nullptr. */
    PayloadT *
    find(Addr line_addr)
    {
        std::size_t bucket = findBucket(lineAlign(line_addr));
        return bucket == kNoBucket
                   ? nullptr
                   : &slot(_buckets[bucket] - 1).payload();
    }

    const PayloadT *
    find(Addr line_addr) const
    {
        return const_cast<LineTable *>(this)->find(line_addr);
    }

    bool contains(Addr line_addr) const
    {
        return find(line_addr) != nullptr;
    }

    /** Find-or-default-construct (map-style operator[]). */
    PayloadT &
    operator[](Addr line_addr)
    {
        if (PayloadT *payload = find(line_addr))
            return *payload;
        return insert(line_addr);
    }

    /**
     * Insert a fresh default-constructed payload for @p line_addr.
     * @pre no entry exists for the line
     */
    PayloadT &
    insert(Addr line_addr)
    {
        line_addr = lineAlign(line_addr);
        panic_if(find(line_addr) != nullptr,
                 "duplicate line-table insert for line ", line_addr);
        if ((_size + 1) * 2 > _buckets.size())
            grow();

        std::uint32_t slot_id = takeSlot();
        Slot &s = slot(slot_id);
        s.addr = line_addr;
        new (s.storage) PayloadT();
        s.live = true;

        std::size_t mask = _buckets.size() - 1;
        std::size_t bucket = idealBucket(line_addr);
        while (_buckets[bucket] != 0)
            bucket = (bucket + 1) & mask;
        _buckets[bucket] = slot_id + 1;
        ++_size;
        return s.payload();
    }

    /** Destroy the entry for @p line_addr. @return false if absent. */
    bool
    erase(Addr line_addr)
    {
        line_addr = lineAlign(line_addr);
        std::size_t bucket = findBucket(line_addr);
        if (bucket == kNoBucket)
            return false;

        std::uint32_t slot_id = _buckets[bucket] - 1;
        Slot &s = slot(slot_id);
        s.payload().~PayloadT();
        s.live = false;
        _freeSlots.push_back(slot_id);

        // Backward-shift deletion: pull displaced entries up so probe
        // chains stay contiguous without tombstones.
        std::size_t mask = _buckets.size() - 1;
        std::size_t hole = bucket;
        std::size_t probe = hole;
        while (true) {
            probe = (probe + 1) & mask;
            if (_buckets[probe] == 0)
                break;
            std::size_t ideal =
                idealBucket(slot(_buckets[probe] - 1).addr);
            if (((probe - ideal) & mask) >= ((probe - hole) & mask)) {
                _buckets[hole] = _buckets[probe];
                hole = probe;
            }
        }
        _buckets[hole] = 0;
        --_size;
        return true;
    }

    /** Destroy every entry (slabs and index capacity are kept). */
    void
    clear()
    {
        for (auto &chunk : _chunks) {
            for (std::size_t i = 0; i < kChunkSlots; ++i) {
                if (chunk[i].live) {
                    chunk[i].payload().~PayloadT();
                    chunk[i].live = false;
                }
            }
        }
        std::fill(_buckets.begin(), _buckets.end(), 0);
        _freeSlots.clear();
        _nextSlot = 0;
        _size = 0;
    }

    /**
     * Iterate live entries in ascending address order (diagnostics
     * only: costs a sort, but keeps snapshot/report output
     * deterministic and independent of insertion history).
     */
    template <typename Fn>
    void
    forEachSorted(Fn &&fn)
    {
        for (Slot *s : sortedSlots())
            fn(s->addr, s->payload());
    }

    template <typename Fn>
    void
    forEachSorted(Fn &&fn) const
    {
        for (Slot *s : const_cast<LineTable *>(this)->sortedSlots())
            fn(s->addr, const_cast<const PayloadT &>(s->payload()));
    }

  private:
    static constexpr std::size_t kChunkSlots = 32;
    static constexpr std::size_t kNoBucket =
        static_cast<std::size_t>(-1);

    struct Slot
    {
        Addr addr = 0;
        bool live = false;
        alignas(PayloadT) unsigned char storage[sizeof(PayloadT)];

        PayloadT &
        payload()
        {
            return *std::launder(
                reinterpret_cast<PayloadT *>(storage));
        }
    };

    Slot &
    slot(std::uint32_t id)
    {
        return _chunks[id / kChunkSlots][id % kChunkSlots];
    }

    static unsigned
    shiftFor(std::size_t buckets)
    {
        unsigned shift = 64;
        for (std::size_t b = buckets; b > 1; b /= 2)
            --shift;
        return shift;
    }

    std::size_t
    idealBucket(Addr line_addr) const
    {
        // Fibonacci hashing on the line number: multiplicative mix,
        // then take the top log2(buckets) bits.
        std::uint64_t h = (line_addr / kLineBytes) *
                          0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> _shift);
    }

    /** Bucket holding @p line_addr, or kNoBucket. */
    std::size_t
    findBucket(Addr line_addr) const
    {
        std::size_t mask = _buckets.size() - 1;
        std::size_t bucket = idealBucket(line_addr);
        while (_buckets[bucket] != 0) {
            const Slot &s = const_cast<LineTable *>(this)->slot(
                _buckets[bucket] - 1);
            if (s.addr == line_addr)
                return bucket;
            bucket = (bucket + 1) & mask;
        }
        return kNoBucket;
    }

    std::uint32_t
    takeSlot()
    {
        if (!_freeSlots.empty()) {
            std::uint32_t id = _freeSlots.back();
            _freeSlots.pop_back();
            return id;
        }
        if (_nextSlot == _chunks.size() * kChunkSlots)
            _chunks.push_back(
                std::make_unique<Slot[]>(kChunkSlots));
        return _nextSlot++;
    }

    /** Double the index and rehash (slots never move). */
    void
    grow()
    {
        std::vector<std::uint32_t> old = std::move(_buckets);
        _buckets.assign(old.size() * 2, 0);
        _shift = shiftFor(_buckets.size());
        std::size_t mask = _buckets.size() - 1;
        for (std::uint32_t id_plus1 : old) {
            if (id_plus1 == 0)
                continue;
            std::size_t bucket =
                idealBucket(slot(id_plus1 - 1).addr);
            while (_buckets[bucket] != 0)
                bucket = (bucket + 1) & mask;
            _buckets[bucket] = id_plus1;
        }
    }

    std::vector<Slot *>
    sortedSlots()
    {
        std::vector<Slot *> live;
        live.reserve(_size);
        for (std::uint32_t id = 0; id < _nextSlot; ++id) {
            Slot &s = slot(id);
            if (s.live)
                live.push_back(&s);
        }
        std::sort(live.begin(), live.end(),
                  [](const Slot *a, const Slot *b) {
                      return a->addr < b->addr;
                  });
        return live;
    }

    /** Slot id + 1 per bucket; 0 marks an empty bucket. */
    std::vector<std::uint32_t> _buckets;
    unsigned _shift = 60;
    std::vector<std::unique_ptr<Slot[]>> _chunks;
    std::vector<std::uint32_t> _freeSlots;
    std::uint32_t _nextSlot = 0;
    std::size_t _size = 0;
};

} // namespace nosync

#endif // MEM_LINE_TABLE_HH
