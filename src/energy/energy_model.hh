/**
 * @file
 * Per-event dynamic energy model.
 *
 * The paper reports dynamic energy split into five components (GPU
 * core+, scratchpad, L1 D$, L2 $, network) using GPUWattch and McPAT.
 * Neither tool is available here, so we substitute event counting with
 * per-event energy constants of plausible relative magnitude (see
 * DESIGN.md). All figures in the paper are normalized, so only the
 * relative shape of these constants matters.
 */

#ifndef ENERGY_ENERGY_MODEL_HH
#define ENERGY_ENERGY_MODEL_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "sim/pdes.hh"
#include "sim/stats.hh"

namespace nosync
{

/** Energy breakdown components, matching the paper's figure legends. */
enum class EnergyComponent : unsigned
{
    GpuCore = 0, ///< "GPU core+": pipeline, RF, scheduler, i-cache
    Scratch,     ///< scratchpad accesses
    L1D,         ///< L1 data cache accesses
    L2,          ///< L2 cache accesses
    Network,     ///< NoC flit-hop energy
    NumComponents,
};

constexpr std::size_t kNumEnergyComponents =
    static_cast<std::size_t>(EnergyComponent::NumComponents);

/** Component names matching the paper's legend. */
inline const std::vector<std::string> &
energyComponentNames()
{
    static const std::vector<std::string> names = {
        "GPU_core+", "Scratch", "L1_D$", "L2_$", "N_W"};
    return names;
}

/** Per-event energy constants, in picojoules. */
struct EnergyParams
{
    double l1Access = 30.0;      ///< full L1 data access
    double l1TagAccess = 10.0;   ///< tag-only probe (e.g. lookup miss)
    double l2Access = 150.0;     ///< L2 bank data access
    double scratchAccess = 15.0; ///< scratchpad word access
    double flitHop = 25.0;       ///< per flit per link crossing
    /**
     * Per CU per cycle while the CU has unfinished thread blocks.
     * Deliberately modest: synchronization-bound CUs spend most
     * cycles stalled with clock-gated pipelines, so dynamic core
     * energy is dominated by the memory-system events above.
     */
    double coreActiveCycle = 15.0;
    double atomicAluOp = 8.0;    ///< extra ALU work for an atomic
};

/** Accumulates dynamic energy per component. */
class EnergyModel
{
  public:
    EnergyModel(stats::StatSet &stats, const EnergyParams &params)
        : _params(params),
          _energy(stats.registerVector(
              "energy.dynamic", "dynamic energy by component (pJ)",
              energyComponentNames()))
    {}

    const EnergyParams &params() const { return _params; }

    /**
     * PDES engine mode: give every domain a private accumulator lane
     * so hot-path add() calls from the parallel phase touch only
     * their own cache line. foldLanes() folds the lanes into the
     * stats Vector in domain order before metrics are read; every
     * per-event constant is an integer number of picojoules, so the
     * folded sums are exact in any order and independent of packing.
     */
    void
    enableDomainLanes(unsigned domains)
    {
        _lanes = std::vector<Lane>(domains);
    }

    /** Fold and zero all domain lanes (before reading metrics). */
    void
    foldLanes()
    {
        for (Lane &lane : _lanes) {
            for (std::size_t c = 0; c < kNumEnergyComponents; ++c) {
                if (lane.pj[c] != 0.0)
                    _energy->add(c, lane.pj[c]);
                lane.pj[c] = 0.0;
            }
        }
    }

    void
    l1Access(double count = 1.0)
    {
        add(EnergyComponent::L1D, _params.l1Access * count);
    }

    void
    l1TagAccess(double count = 1.0)
    {
        add(EnergyComponent::L1D, _params.l1TagAccess * count);
    }

    void
    l2Access(double count = 1.0)
    {
        add(EnergyComponent::L2, _params.l2Access * count);
    }

    void
    scratchAccess(double count = 1.0)
    {
        add(EnergyComponent::Scratch, _params.scratchAccess * count);
    }

    void
    atomicAlu(double count = 1.0)
    {
        add(EnergyComponent::GpuCore, _params.atomicAluOp * count);
    }

    void
    coreActiveCycles(double cycles)
    {
        add(EnergyComponent::GpuCore,
            _params.coreActiveCycle * cycles);
    }

    void
    flitCrossings(double crossings)
    {
        add(EnergyComponent::Network, _params.flitHop * crossings);
    }

    double
    component(EnergyComponent c) const
    {
        return _energy->value(static_cast<std::size_t>(c));
    }

    double total() const { return _energy->total(); }

  private:
    /** Per-domain accumulator (engine mode). */
    struct alignas(64) Lane
    {
        std::array<double, kNumEnergyComponents> pj{};
    };

    void
    add(EnergyComponent c, double pj)
    {
        if (!_lanes.empty()) {
            const int d = PdesEngine::currentDomain();
            if (d >= 0) {
                _lanes[static_cast<unsigned>(d)]
                    .pj[static_cast<std::size_t>(c)] += pj;
                return;
            }
        }
        _energy->add(static_cast<std::size_t>(c), pj);
    }

    EnergyParams _params;
    stats::Handle<stats::Vector> _energy;
    std::vector<Lane> _lanes;
};

} // namespace nosync

#endif // ENERGY_ENERGY_MODEL_HH
